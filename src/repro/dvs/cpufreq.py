"""CPUFreq-style frequency control interface (Linux 2.6 `cpufreq`).

The paper's platform exposes Enhanced SpeedStep through the kernel's
CPUFreq subsystem; userspace (the cpuspeed daemon, or the application via
PowerPack's library calls) writes a target frequency and the hardware
switches P-states.

Two cost models, matching who pays in reality:

* :meth:`CpuFreq.set_speed` — called from *application* context (the
  paper's dynamic strategy): the caller stalls for the transition latency
  plus an application-visible penalty (voltage ramp, pipeline drain,
  cache re-warming).  This is why the paper's dynamic mode runs slightly
  longer than static mode at the same operating point (Fig 4).
* :meth:`CpuFreq.set_speed_now` — called from *daemon* context
  (cpuspeed): applied off the application's critical path; the switch
  itself is modelled as instantaneous for the application.
"""

from __future__ import annotations

from typing import Generator, List

from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import Calibration
from repro.hardware.dvfs import OperatingPoint
from repro.hardware.node import Node
from repro.obs.tracer import active_tracer
from repro.sim.events import Event

__all__ = ["CpuFreq"]


class CpuFreq:
    """Per-node frequency-setting interface."""

    def __init__(self, node: Node, calibration: Calibration):
        self.node = node
        self.calibration = calibration

    # ------------------------------------------------------------------
    @property
    def current_frequency(self) -> float:
        """``scaling_cur_freq`` (Hz)."""
        return self.node.cpu.frequency

    @property
    def available_frequencies(self) -> List[float]:
        """``scaling_available_frequencies`` (Hz, slowest first)."""
        return self.node.table.frequencies

    def resolve(self, frequency: float) -> OperatingPoint:
        """Snap an arbitrary requested frequency to a legal P-state."""
        return self.node.table.closest(frequency)

    # ------------------------------------------------------------------
    def set_speed_now(self, frequency: float) -> None:
        """Daemon-context switch: instantaneous for the application."""
        point = self.resolve(frequency)
        before = self.node.cpu.frequency
        self.node.cpu.set_frequency(point)
        if before != point.frequency:
            self._trace_transition(before, point.frequency, "daemon")

    def set_speed(self, frequency: float) -> Generator[Event, object, None]:
        """Application-context switch: the caller pays the transition cost.

        Generator — drive with ``yield from`` inside a rank program.
        No cost is paid when the target equals the current frequency.
        """
        point = self.resolve(frequency)
        before = self.node.cpu.frequency
        if point.frequency == before:
            return
        cal = self.calibration
        cost = cal.transition_latency + cal.transition_penalty
        if cost > 0:
            yield from self.node.cpu.stall(cost, CpuActivity.ACTIVE)
        self.node.cpu.set_frequency(point)
        self._trace_transition(before, point.frequency, "app")

    def _trace_transition(self, before: float, after: float, mode: str) -> None:
        """Emit the DVS transition instant + clock counter (traced runs)."""
        tracer = active_tracer()
        if not tracer.enabled:
            return
        now = self.node.engine.now
        nid = self.node.node_id
        tracer.instant(
            "transition", "dvs", nid, now,
            from_mhz=before / 1e6, to_mhz=after / 1e6, mode=mode,
        )
        tracer.counter("freq_mhz", nid, now, after / 1e6)
