"""DVS control substrate: CPUFreq interface, cpuspeed daemon emulation,
and the paper's three distributed DVS strategies (cpuspeed / static /
dynamic application-directed control)."""

from repro.dvs.capped import CappedCpuFreq
from repro.dvs.adaptive import AdaptiveConfig, AdaptiveController, AdaptiveStrategy
from repro.dvs.controller import DvsController, DynamicController, NullController
from repro.dvs.cpufreq import CpuFreq
from repro.dvs.cpuspeed import CpuspeedConfig, CpuspeedDaemon
from repro.dvs.ondemand import OndemandConfig, OndemandGovernor, OndemandStrategy
from repro.dvs.policy import cpuspeed_decision, proportional_decision
from repro.dvs.strategy import (
    CpuspeedStrategy,
    DVSStrategy,
    DynamicStrategy,
    StaticStrategy,
)

__all__ = [
    "CpuFreq",
    "CappedCpuFreq",
    "CpuspeedConfig",
    "CpuspeedDaemon",
    "DvsController",
    "NullController",
    "DynamicController",
    "DVSStrategy",
    "StaticStrategy",
    "CpuspeedStrategy",
    "DynamicStrategy",
    "OndemandConfig",
    "OndemandGovernor",
    "OndemandStrategy",
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptiveStrategy",
    "cpuspeed_decision",
    "proportional_decision",
]
