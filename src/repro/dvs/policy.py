"""Pure governor decision rules, shared by simulated and real backends.

The cpuspeed algorithm is a three-way decision on observed utilisation;
keeping it as a pure function lets the simulated daemon
(:mod:`repro.dvs.cpuspeed`) and the real sysfs-backed daemon
(:mod:`repro.realhw.daemon`) provably run the same policy.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.validation import check_fraction

__all__ = ["cpuspeed_decision", "proportional_decision"]


def cpuspeed_decision(
    utilization: float,
    current_hz: float,
    available_hz: Sequence[float],
    up_threshold: float = 0.90,
    down_threshold: float = 0.25,
) -> float:
    """The cpuspeed rule: jump to max when busy, step down when idle.

    Parameters
    ----------
    utilization:
        Busy fraction over the last observation window.
    current_hz:
        Current frequency.
    available_hz:
        Legal frequencies, any order.
    """
    check_fraction("utilization", utilization)
    ladder = sorted(available_hz)
    if not ladder:
        raise ValueError("available_hz must not be empty")
    if utilization >= up_threshold:
        return ladder[-1]
    if utilization <= down_threshold:
        below = [f for f in ladder if f < current_hz]
        return below[-1] if below else ladder[0]
    return current_hz


def proportional_decision(
    utilization: float,
    available_hz: Sequence[float],
    headroom: float = 1.0,
) -> float:
    """Ondemand-style rule: slowest frequency covering the busy share.

    Picks the slowest legal frequency at least ``utilization · headroom``
    of the maximum — the policy Linux's later ``ondemand`` governor
    popularised, included as a comparison point.
    """
    check_fraction("utilization", utilization)
    ladder = sorted(available_hz)
    if not ladder:
        raise ValueError("available_hz must not be empty")
    needed = utilization * headroom * ladder[-1]
    for freq in ladder:
        if freq >= needed:
            return freq
    return ladder[-1]
