"""Application-directed DVS control (the paper's *dynamic* strategy).

The paper inserts PowerPack library calls "before (to lowest speed) and
after (to original speed) the function fft()".  Workload programs in this
repo mark such slack-heavy regions with::

    yield from dvs.region_enter("fft")
    ...  # communication-dominated work
    yield from dvs.region_exit("fft")

What happens at those markers depends on the controller the strategy
installed: the :class:`NullController` ignores them (static / cpuspeed
runs), the :class:`DynamicController` drops to a low frequency on entry
and restores the original on exit, paying the transition cost both ways.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.dvs.cpufreq import CpuFreq
from repro.sim.events import Event

__all__ = ["DvsController", "NullController", "DynamicController"]

ControlGen = Generator[Event, object, None]


class DvsController:
    """Interface seen by workload programs at region markers."""

    def region_enter(self, name: str) -> ControlGen:  # pragma: no cover - abstract
        raise NotImplementedError

    def region_exit(self, name: str) -> ControlGen:  # pragma: no cover - abstract
        raise NotImplementedError


class NullController(DvsController):
    """Markers are no-ops (static and cpuspeed strategies)."""

    def region_enter(self, name: str) -> ControlGen:
        return
        yield  # pragma: no cover - makes this a generator function

    def region_exit(self, name: str) -> ControlGen:
        return
        yield  # pragma: no cover


class DynamicController(DvsController):
    """Scale down inside marked regions, restore outside.

    Parameters
    ----------
    cpufreq:
        The rank's node frequency interface.
    low_frequency:
        Target inside regions (Hz); the paper uses the ladder's minimum.
    regions:
        When given, only markers with these names trigger transitions
        (others are ignored) — lets one workload expose several regions
        while an experiment scales only some.
    """

    def __init__(
        self,
        cpufreq: CpuFreq,
        low_frequency: float,
        regions: Optional[List[str]] = None,
    ):
        self.cpufreq = cpufreq
        self.low_frequency = low_frequency
        self.regions = set(regions) if regions is not None else None
        self._saved: List[Tuple[str, float]] = []
        #: transition log: (time, region, direction)
        self.events: List[Tuple[float, str, str]] = []

    def _active_for(self, name: str) -> bool:
        return self.regions is None or name in self.regions

    def region_enter(self, name: str) -> ControlGen:
        if not self._active_for(name):
            return
        original = self.cpufreq.current_frequency
        self._saved.append((name, original))
        yield from self.cpufreq.set_speed(self.low_frequency)
        self.events.append((self.cpufreq.node.engine.now, name, "enter"))

    def region_exit(self, name: str) -> ControlGen:
        if not self._active_for(name):
            return
        if not self._saved or self._saved[-1][0] != name:
            raise RuntimeError(
                f"region_exit({name!r}) does not match the innermost "
                f"region_enter ({self._saved[-1][0]!r} open)"
                if self._saved
                else f"region_exit({name!r}) with no open region"
            )
        _, original = self._saved.pop()
        yield from self.cpufreq.set_speed(original)
        self.events.append((self.cpufreq.node.engine.now, name, "exit"))
