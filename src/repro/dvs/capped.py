"""Cap-aware frequency setting: a CPUFreq interface with a ceiling.

The power-budget governor (:mod:`repro.powercap`) does not take over a
node's frequency outright — real cluster power managers compose with
whatever is already driving DVS (an application runtime, a kernel
governor).  :class:`CappedCpuFreq` realises that composition: it is a
drop-in :class:`~repro.dvs.cpufreq.CpuFreq` whose :meth:`resolve` clamps
every request to a governor-owned ceiling, the way the Linux cpufreq
``scaling_max_freq`` limit clamps ``scaling_setspeed`` writes.

Any existing controller (static, dynamic, adaptive, the cpuspeed daemon)
handed a :class:`CappedCpuFreq` instead of a plain ``CpuFreq`` keeps
working unchanged; it simply can no longer exceed the cluster's power
budget, and regains headroom the instant the governor raises the ceiling.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.calibration import Calibration
from repro.hardware.dvfs import OperatingPoint
from repro.hardware.node import Node

from repro.dvs.cpufreq import CpuFreq

__all__ = ["CappedCpuFreq"]


class CappedCpuFreq(CpuFreq):
    """A per-node frequency setter clamped to a mutable ceiling.

    Parameters
    ----------
    node, calibration:
        As for :class:`~repro.dvs.cpufreq.CpuFreq`.
    max_frequency:
        Initial ceiling in Hz (default: the ladder's fastest point, i.e.
        no clamping until a governor lowers it).
    """

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        max_frequency: Optional[float] = None,
    ):
        super().__init__(node, calibration)
        fastest = node.table.fastest.frequency
        self._ceiling = node.table.closest(
            fastest if max_frequency is None else max_frequency
        ).frequency
        #: ceiling-change log: (time, ceiling Hz)
        self.ceiling_changes = [(node.engine.now, self._ceiling)]

    # ------------------------------------------------------------------
    @property
    def ceiling(self) -> float:
        """The current maximum allowed frequency (Hz, a legal P-state)."""
        return self._ceiling

    def resolve(self, frequency: float) -> OperatingPoint:
        """Snap a request to a legal P-state, clamped at the ceiling."""
        return self.node.table.closest(min(frequency, self._ceiling))

    def set_ceiling(self, frequency: float) -> None:
        """Governor-context: move the ceiling (snapped to the ladder).

        Lowering the ceiling below the current frequency forces an
        immediate daemon-context switch down; raising it never changes the
        running frequency by itself (the controller in charge decides
        whether to use the new headroom — for plain capped runs the
        governor follows up with an explicit :meth:`set_speed_now`).
        """
        point = self.node.table.closest(frequency)
        if point.frequency == self._ceiling:
            return
        self._ceiling = point.frequency
        self.ceiling_changes.append((self.node.engine.now, self._ceiling))
        if self.node.cpu.frequency > self._ceiling:
            self.set_speed_now(self._ceiling)
