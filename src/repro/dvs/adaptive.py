"""Adaptive per-region DVS (extension: the paper's hand-tuning, automated).

The paper's *dynamic* strategy requires a human to know that ``fft()`` is
slack-heavy.  This strategy learns it: for each marked region it runs a
short online calibration — one execution at the base frequency, one at
the candidate low frequency — and keeps the low frequency only if the
observed slowdown stays within a user tolerance.  Regions that turn out
to be frequency-sensitive (an EP-like compute region) are left at base.

This is the research direction the paper opened (slack-directed runtime
DVS, later systems like Adagio and GEOPM); including it shows the
framework supports strategies beyond the paper's three.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dvs.controller import ControlGen, DvsController
from repro.dvs.cpufreq import CpuFreq
from repro.dvs.strategy import DVSStrategy
from repro.hardware.cluster import Cluster
from repro.util.validation import check_positive

__all__ = ["AdaptiveConfig", "AdaptiveController", "AdaptiveStrategy"]


class _Phase(enum.Enum):
    MEASURE_BASE = "measure-base"
    MEASURE_LOW = "measure-low"
    DECIDED = "decided"


@dataclass
class _RegionState:
    phase: _Phase = _Phase.MEASURE_BASE
    base_duration: Optional[float] = None
    low_duration: Optional[float] = None
    use_low: bool = False


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tolerance for accepting the low frequency in a region."""

    #: max acceptable region slowdown (e.g. 0.15 = 15 %)
    slowdown_tolerance: float = 0.15

    def __post_init__(self) -> None:
        check_positive("slowdown_tolerance", self.slowdown_tolerance)


class AdaptiveController(DvsController):
    """Per-rank controller with per-region online calibration."""

    def __init__(
        self,
        cpufreq: CpuFreq,
        base_frequency: float,
        low_frequency: float,
        config: Optional[AdaptiveConfig] = None,
    ):
        self.cpufreq = cpufreq
        self.engine = cpufreq.node.engine
        self.base_frequency = base_frequency
        self.low_frequency = low_frequency
        self.config = config or AdaptiveConfig()
        self.regions: Dict[str, _RegionState] = {}
        self._entered_at: Dict[str, float] = {}
        self._entered_low: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def decision_for(self, name: str) -> Optional[bool]:
        """Whether the region runs at low frequency (None = still learning)."""
        state = self.regions.get(name)
        if state is None or state.phase is not _Phase.DECIDED:
            return None
        return state.use_low

    def region_enter(self, name: str) -> ControlGen:
        state = self.regions.setdefault(name, _RegionState())
        go_low = (
            state.phase is _Phase.MEASURE_LOW
            or (state.phase is _Phase.DECIDED and state.use_low)
        )
        self._entered_at[name] = self.engine.now
        self._entered_low[name] = go_low
        if go_low:
            yield from self.cpufreq.set_speed(self.low_frequency)

    def region_exit(self, name: str) -> ControlGen:
        if name not in self._entered_at:
            raise RuntimeError(f"region_exit({name!r}) with no matching enter")
        duration = self.engine.now - self._entered_at.pop(name)
        went_low = self._entered_low.pop(name)
        state = self.regions[name]
        if state.phase is _Phase.MEASURE_BASE:
            state.base_duration = duration
            state.phase = _Phase.MEASURE_LOW
        elif state.phase is _Phase.MEASURE_LOW:
            state.low_duration = duration
            assert state.base_duration is not None
            slowdown = duration / state.base_duration - 1.0
            state.use_low = slowdown <= self.config.slowdown_tolerance
            state.phase = _Phase.DECIDED
        if went_low:
            yield from self.cpufreq.set_speed(self.base_frequency)


class AdaptiveStrategy(DVSStrategy):
    """Cluster-wide adaptive per-region scaling."""

    kind = "adaptive"

    def __init__(
        self,
        base_frequency: float,
        low_frequency: Optional[float] = None,
        config: Optional[AdaptiveConfig] = None,
    ):
        super().__init__()
        self.base_frequency = base_frequency
        self.low_frequency = low_frequency
        self.config = config or AdaptiveConfig()
        self.controllers: List[AdaptiveController] = []

    @property
    def name(self) -> str:
        return f"adaptive@{self.base_frequency / 1e6:.0f}MHz"

    def prepare(self, cluster: Cluster) -> None:
        super().prepare(cluster)
        self._low = (
            self.low_frequency
            if self.low_frequency is not None
            else cluster.table.slowest.frequency
        )
        for node in cluster.nodes:
            self._cpufreqs[node.node_id].set_speed_now(self.base_frequency)

    def controller(self, comm) -> AdaptiveController:
        ctl = AdaptiveController(
            self.cpufreq_for(comm.rank),
            self.base_frequency,
            self._low,
            config=self.config,
        )
        self.controllers.append(ctl)
        return ctl
