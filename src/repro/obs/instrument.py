"""Helpers the instrumentation hooks share.

The one non-obvious piece is :func:`traced_generator`: every simulated
MPI call is a *generator* driven with ``yield from`` inside a rank
program, so wrapping it in a plain decorator would record the wrong
thing (the call that *builds* the generator, not the simulated time it
spans).  The wrapper delegates with ``yield from`` and reads the engine
clock on entry and exit, so the span covers exactly the simulated
interval the operation occupied — including the failure path.

Call sites keep the zero-cost contract themselves::

    gen = collectives.barrier(self)
    tracer = active_tracer()
    if not tracer.enabled:
        return gen           # untraced: the original generator, no wrapper
    return traced_generator(tracer, self.engine, gen, ...)
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.obs.tracer import SIM_CLOCK, Tracer

__all__ = ["traced_generator"]


def traced_generator(
    tracer: Tracer,
    engine,
    gen: Generator,
    name: str,
    cat: str,
    track,
    args: Optional[dict] = None,
) -> Generator:
    """Drive ``gen`` to completion, recording its sim-time extent.

    Returns a new generator with the same protocol (yields, sends, and
    return value pass straight through).  The span is recorded in a
    ``finally`` block so an operation that dies mid-flight (a crashed
    peer, an interrupt) still leaves its partial extent in the trace,
    tagged ``error=True``.
    """
    def wrapper():
        t0 = engine.now
        failed = False
        try:
            result = yield from gen
        except BaseException:
            failed = True
            raise
        finally:
            extra = dict(args) if args else {}
            if failed:
                extra["error"] = True
            tracer.span(
                name, cat, track, t0, engine.now, SIM_CLOCK, **extra
            )
        return result

    return wrapper()
