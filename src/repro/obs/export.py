"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.

Chrome trace-event mapping (the same dialect
:mod:`repro.analysis.traceviz` emits for power timelines, so both loads
into the same Perfetto UI):

* spans     → complete events (``ph: "X"``) with µs ``ts``/``dur``;
* counters  → counter events (``ph: "C"``);
* instants  → instant events (``ph: "i"``, process scope);
* tracks    → ``pid``: integer tracks (rank/node ids) keep their id,
  string tracks ("governor", "cache", "sweep") get stable pids from
  :data:`NAMED_TRACK_BASE` up, and every track gets a ``process_name``
  metadata event.

Records on the wall clock share the timeline with simulated-clock
records (both start near zero); every event carries its ``clock`` in
``args`` so the two are distinguishable in the UI and in queries.

:func:`validate_chrome_trace` is the minimal schema the CI trace-smoke
step (and :mod:`repro.obs.cli` ``validate``) checks exported files
against; :func:`load_trace_file` reads either format back into records
for ``summary``/``export``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.tracer import (
    SIM_CLOCK,
    CounterRecord,
    InstantRecord,
    SpanRecord,
    Tracer,
)

__all__ = [
    "NAMED_TRACK_BASE",
    "POWER_COUNTER_NAME",
    "TraceData",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_jsonl",
    "load_trace_file",
    "power_counter_records",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
]

_US = 1e6  # seconds → trace-event microseconds

#: First pid handed to a string-named track (rank tracks keep their id).
NAMED_TRACK_BASE = 1000

#: ``ph`` values the minimal schema accepts.
_VALID_PHASES = frozenset({"M", "X", "C", "i", "B", "E"})


@dataclass
class TraceData:
    """A tracer's records detached from the tracer (what files hold)."""

    spans: List[SpanRecord] = field(default_factory=list)
    counters: List[CounterRecord] = field(default_factory=list)
    instants: List[InstantRecord] = field(default_factory=list)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceData":
        return cls(
            spans=list(tracer.spans),
            counters=list(tracer.counters),
            instants=list(tracer.instants),
        )

    def __len__(self) -> int:
        return len(self.spans) + len(self.counters) + len(self.instants)


Source = Union[Tracer, TraceData]

#: counter name power tracks are exported under (one track per node).
POWER_COUNTER_NAME = "power_w"


def power_counter_records(
    cluster,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    resolution: float = 0.0,
) -> List[CounterRecord]:
    """Per-node power as counter records, read off the frozen series.

    One :class:`CounterRecord` series per node (``name="power_w"``,
    ``track=node_id``): a sample at ``t0`` with the level then in
    effect, followed by every change point in ``(t0, t1]``, optionally
    thinned so consecutive samples are at least ``resolution`` seconds
    apart.  Interleaves with span/instant records in the same Perfetto
    timeline, so a run's power shows up as counter tracks next to its
    phases.
    """
    records: List[CounterRecord] = []
    for node in cluster.nodes:
        series = node.timeline.series()
        lo = series.start_time if t0 is None else t0
        hi = series.last_change if t1 is None else t1
        if hi < lo:
            raise ValueError(f"power window reversed: [{lo}, {hi}]")
        records.append(
            CounterRecord(
                name=POWER_COUNTER_NAME,
                track=node.node_id,
                t=lo,
                value=float(series.sample(lo)[0]),
            )
        )
        last = lo
        for time, watts in zip(*series.window(lo, hi)):
            if time <= lo:
                continue
            if resolution > 0.0 and time - last < resolution:
                continue
            last = float(time)
            records.append(
                CounterRecord(
                    name=POWER_COUNTER_NAME,
                    track=node.node_id,
                    t=float(time),
                    value=float(watts),
                )
            )
    return records


def _data_of(source: Source) -> TraceData:
    if isinstance(source, TraceData):
        return source
    return TraceData.from_tracer(source)


def _track_pids(data: TraceData) -> Dict[Union[int, str], int]:
    """Stable track → pid assignment (ints keep their id, names sorted)."""
    tracks = {
        r.track
        for records in (data.spans, data.counters, data.instants)
        for r in records
    }
    pids: Dict[Union[int, str], int] = {
        t: t for t in tracks if isinstance(t, int)
    }
    for i, name in enumerate(sorted(t for t in tracks if isinstance(t, str))):
        pids[name] = NAMED_TRACK_BASE + i
    return pids


def chrome_trace_events(source: Source) -> List[dict]:
    """All records as Chrome trace-event dicts (metadata first)."""
    data = _data_of(source)
    pids = _track_pids(data)
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "args": {"name": str(track)},
        }
        for track, pid in sorted(pids.items(), key=lambda kv: kv[1])
    ]
    for s in data.spans:
        args = dict(s.args or {})
        args["clock"] = s.clock
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.cat,
                "pid": pids[s.track],
                "tid": 0,
                "ts": s.t0 * _US,
                "dur": max(0.0, s.duration) * _US,
                "args": args,
            }
        )
    for c in data.counters:
        events.append(
            {
                "ph": "C",
                "name": c.name,
                "pid": pids[c.track],
                "ts": c.t * _US,
                "args": {c.name: c.value, "clock": c.clock},
            }
        )
    for i in data.instants:
        args = dict(i.args or {})
        args["clock"] = i.clock
        events.append(
            {
                "ph": "i",
                "name": i.name,
                "cat": i.cat,
                "pid": pids[i.track],
                "tid": 0,
                "ts": i.t * _US,
                "s": "p",
                "args": args,
            }
        )
    return events


def to_chrome_trace(source: Source) -> dict:
    """The full JSON-able document (``traceEvents`` object form)."""
    return {
        "traceEvents": chrome_trace_events(source),
        "displayTimeUnit": "ms",
    }


def export_chrome_trace(path: Union[str, Path], source: Source) -> int:
    """Write Chrome trace-event JSON; returns the event count."""
    document = to_chrome_trace(source)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document), encoding="utf-8")
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _record_line(kind: str, record) -> dict:
    line = {"kind": kind, "name": record.name, "track": record.track,
            "clock": record.clock}
    if kind == "span":
        line.update(cat=record.cat, t0=record.t0, t1=record.t1)
        if record.args:
            line["args"] = record.args
    elif kind == "counter":
        line.update(t=record.t, value=record.value)
    else:
        line.update(cat=record.cat, t=record.t)
        if record.args:
            line["args"] = record.args
    return line


def to_jsonl(source: Source) -> str:
    """All records as JSON lines (spans, then counters, then instants)."""
    data = _data_of(source)
    lines = [_record_line("span", s) for s in data.spans]
    lines += [_record_line("counter", c) for c in data.counters]
    lines += [_record_line("instant", i) for i in data.instants]
    return "\n".join(json.dumps(line, sort_keys=True) for line in lines)


def export_jsonl(path: Union[str, Path], source: Source) -> int:
    """Write the JSONL stream; returns the record count."""
    data = _data_of(source)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = to_jsonl(data)
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return len(data)


# ----------------------------------------------------------------------
# loading (for the CLI: summarise / convert existing files)
# ----------------------------------------------------------------------
def _records_from_jsonl(text: str) -> TraceData:
    data = TraceData()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            line = json.loads(raw)
            kind = line["kind"]
            if kind == "span":
                data.spans.append(
                    SpanRecord(
                        name=line["name"],
                        cat=line.get("cat", ""),
                        track=line["track"],
                        t0=float(line["t0"]),
                        t1=float(line["t1"]),
                        clock=line.get("clock", SIM_CLOCK),
                        args=line.get("args"),
                    )
                )
            elif kind == "counter":
                data.counters.append(
                    CounterRecord(
                        name=line["name"],
                        track=line["track"],
                        t=float(line["t"]),
                        value=float(line["value"]),
                        clock=line.get("clock", SIM_CLOCK),
                    )
                )
            elif kind == "instant":
                data.instants.append(
                    InstantRecord(
                        name=line["name"],
                        cat=line.get("cat", ""),
                        track=line["track"],
                        t=float(line["t"]),
                        clock=line.get("clock", SIM_CLOCK),
                        args=line.get("args"),
                    )
                )
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad JSONL record on line {lineno}: {exc}") from exc
    return data


def _records_from_chrome(document: dict) -> TraceData:
    names = {}  # pid → track name from metadata
    for event in document.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event.get("pid")] = event.get("args", {}).get("name")

    def track_of(event) -> Union[int, str]:
        pid = event.get("pid", 0)
        label = names.get(pid)
        if label is None:
            return pid
        try:
            return int(label)
        except ValueError:
            return label

    data = TraceData()
    for event in document.get("traceEvents", []):
        ph = event.get("ph")
        args = dict(event.get("args") or {})
        clock = args.pop("clock", SIM_CLOCK)
        if ph == "X":
            t0 = float(event["ts"]) / _US
            data.spans.append(
                SpanRecord(
                    name=event.get("name", ""),
                    cat=event.get("cat", ""),
                    track=track_of(event),
                    t0=t0,
                    t1=t0 + float(event.get("dur", 0.0)) / _US,
                    clock=clock,
                    args=args or None,
                )
            )
        elif ph == "C":
            name = event.get("name", "")
            data.counters.append(
                CounterRecord(
                    name=name,
                    track=track_of(event),
                    t=float(event["ts"]) / _US,
                    value=float(args.get(name, 0.0)),
                    clock=clock,
                )
            )
        elif ph == "i":
            data.instants.append(
                InstantRecord(
                    name=event.get("name", ""),
                    cat=event.get("cat", ""),
                    track=track_of(event),
                    t=float(event["ts"]) / _US,
                    clock=clock,
                    args=args or None,
                )
            )
    return data


def load_trace_file(path: Union[str, Path]) -> TraceData:
    """Read a trace back from Chrome JSON or JSONL (sniffed by content)."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict) and "traceEvents" in document:
            return _records_from_chrome(document)
    return _records_from_jsonl(text)


# ----------------------------------------------------------------------
# validation (the CI trace-smoke schema)
# ----------------------------------------------------------------------
def validate_chrome_trace(document: object) -> List[str]:
    """Errors that make ``document`` an invalid Chrome trace (empty = valid).

    The minimal schema Perfetto's legacy importer relies on: a
    ``traceEvents`` list of dicts, each with a known ``ph``, a string
    ``name``, a ``pid``, a numeric ``ts`` on non-metadata events, and a
    non-negative numeric ``dur`` on complete events.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if not isinstance(event.get("pid"), (int, str)):
            errors.append(f"{where}: missing 'pid'")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool):
                errors.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                errors.append(f"{where}: 'X' event needs numeric dur >= 0")
    return errors
