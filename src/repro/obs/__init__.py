"""Unified tracing & profiling (the PowerPack measurement analogue).

The paper's first contribution is PowerPack itself: a framework that
collects, aligns, and *attributes* per-node power profiles to
application phases.  :mod:`repro.obs` is that layer for the simulated
cluster — one process-wide :class:`Tracer` with bounded ring buffers of
span/counter/instant records, fed by instrumentation hooks across the
stack (sim processes, MPI collectives and point-to-point phases, DVS
transitions, governor control windows, fault apply/clear, cache
hits/misses), exported to Chrome trace-event JSON (Perfetto-loadable)
or JSONL, and joined against the power timeline by
:func:`repro.metrics.attribution.build_attribution_report`.

Disabled tracing is the default and costs one global read plus one
attribute check per hook — every instrumentation site guards with
``if tracer.enabled:`` and touches nothing else.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    SIM_CLOCK,
    WALL_CLOCK,
    CounterRecord,
    InstantRecord,
    SpanRecord,
    Tracer,
    active_tracer,
    set_active_tracer,
    tracing,
)
from repro.obs.export import (
    TraceData,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    load_trace_file,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)

__all__ = [
    "NULL_TRACER",
    "SIM_CLOCK",
    "WALL_CLOCK",
    "CounterRecord",
    "InstantRecord",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "set_active_tracer",
    "tracing",
    "TraceData",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_jsonl",
    "load_trace_file",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
]
