"""Command-line entry point: ``repro-trace``.

Examples::

    repro-experiment fig3 --no-cache --trace trace.json
    repro-trace summary trace.json
    repro-trace export trace.json -o trace.jsonl --format jsonl
    repro-trace validate trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import List, Optional

from repro.obs.export import (
    export_chrome_trace,
    export_jsonl,
    load_trace_file,
    validate_chrome_trace,
)

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Inspect, convert, and validate traces recorded by the "
            "repro.obs tracing layer (Chrome trace-event JSON or JSONL)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="per-category span/counter/instant statistics"
    )
    summary.add_argument("trace", metavar="FILE", help="trace file to read")
    summary.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    export = sub.add_parser(
        "export", help="convert between Chrome JSON and JSONL"
    )
    export.add_argument("trace", metavar="FILE", help="trace file to read")
    export.add_argument(
        "-o", "--output", required=True, metavar="PATH", help="output file"
    )
    export.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="output format (default: chrome)",
    )

    validate = sub.add_parser(
        "validate",
        help="check a Chrome trace-event file against the minimal schema",
    )
    validate.add_argument("trace", metavar="FILE", help="trace file to read")
    return parser


def _summary_payload(data) -> dict:
    by_cat = defaultdict(lambda: {"spans": 0, "total_s": 0.0})
    for s in data.spans:
        bucket = by_cat[s.cat or "(uncategorised)"]
        bucket["spans"] += 1
        bucket["total_s"] += max(0.0, s.duration)
    instants = defaultdict(int)
    for i in data.instants:
        instants[f"{i.cat or '(uncategorised)'}/{i.name}"] += 1
    tracks = sorted(
        {str(r.track) for r in (*data.spans, *data.counters, *data.instants)}
    )
    return {
        "records": {
            "spans": len(data.spans),
            "counters": len(data.counters),
            "instants": len(data.instants),
        },
        "tracks": tracks,
        "span_categories": {
            cat: dict(stats) for cat, stats in sorted(by_cat.items())
        },
        "instant_counts": dict(sorted(instants.items())),
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "validate":
        text = open(args.trace, encoding="utf-8").read()
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"invalid: not JSON ({exc})", file=sys.stderr)
            return 1
        errors = validate_chrome_trace(document)
        if errors:
            for error in errors[:20]:
                print(f"invalid: {error}", file=sys.stderr)
            if len(errors) > 20:
                print(f"... and {len(errors) - 20} more", file=sys.stderr)
            return 1
        n = len(document["traceEvents"])
        print(f"{args.trace}: valid Chrome trace ({n} events)")
        return 0

    try:
        data = load_trace_file(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1

    if args.command == "summary":
        payload = _summary_payload(data)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            counts = payload["records"]
            print(
                f"{args.trace}: {counts['spans']} spans, "
                f"{counts['counters']} counters, "
                f"{counts['instants']} instants"
            )
            print(f"tracks: {', '.join(payload['tracks']) or '(none)'}")
            if payload["span_categories"]:
                print("span categories:")
                for cat, stats in payload["span_categories"].items():
                    print(
                        f"  {cat:24s} {stats['spans']:6d} spans  "
                        f"{stats['total_s']:.6f} s total"
                    )
            if payload["instant_counts"]:
                print("instants:")
                for key, count in payload["instant_counts"].items():
                    print(f"  {key:24s} {count:6d}")
        return 0

    if args.command == "export":
        if args.format == "chrome":
            n = export_chrome_trace(args.output, data)
            print(f"wrote {n} events to {args.output}")
        else:
            n = export_jsonl(args.output, data)
            print(f"wrote {n} records to {args.output}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
