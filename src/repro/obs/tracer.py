"""The process-wide tracer: bounded ring buffers of structured records.

Three record kinds, mirroring the Chrome trace-event vocabulary:

* :class:`SpanRecord` — a named interval ``[t0, t1]`` on a track
  (an MPI collective, a governor control window, a rank process);
* :class:`CounterRecord` — a sampled value at an instant (cluster
  watts, a node's clock in MHz);
* :class:`InstantRecord` — a point event (a DVS transition, a fault
  apply/clear, a cache hit).

Records carry either the *simulated* clock (:data:`SIM_CLOCK`, seconds
of engine time — the default, since everything interesting happens
there) or the *wall* clock (:data:`WALL_CLOCK`, seconds since the
tracer was created — cache traffic and sweep orchestration, which
happen outside any engine).

Buffers are ``collections.deque(maxlen=capacity)`` ring buffers: a
tracer can run forever inside a long sweep without growing; overwritten
records are counted in :attr:`Tracer.dropped_spans` et al. so exports
can say what they lost.

**Zero-cost when disabled.**  Instrumentation sites throughout the
stack follow one idiom::

    tracer = active_tracer()
    if tracer.enabled:
        tracer.instant(...)

The default active tracer is :data:`NULL_TRACER` (permanently
disabled), so an untraced run pays one module-global read and one
attribute test per hook — measured under 5 % on a full NAS FT run by
``tests/obs/test_overhead.py`` and ``benchmarks/bench_extension_tracing.py``.

The active tracer is deliberately *process-global*, not a contextvar:
records are emitted from deep inside the simulator where no context is
threaded, and a simulation never spans threads.  Worker processes of a
parallel sweep start with the default (disabled) tracer — tracing a
sweep forces serial in-process execution (see
:func:`repro.analysis.parallel.run_sweep`).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional, Tuple, Union

__all__ = [
    "SIM_CLOCK",
    "WALL_CLOCK",
    "SpanRecord",
    "CounterRecord",
    "InstantRecord",
    "Tracer",
    "NULL_TRACER",
    "active_tracer",
    "set_active_tracer",
    "tracing",
]

#: Record timestamps are simulated-engine seconds.
SIM_CLOCK = "sim"
#: Record timestamps are wall seconds since the tracer's creation.
WALL_CLOCK = "wall"

_CLOCKS = (SIM_CLOCK, WALL_CLOCK)

#: A track names the horizontal lane a record renders on: rank ids
#: (ints) or subsystem names ("governor", "cache", "sweep").
Track = Union[int, str]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """A named ``[t0, t1]`` interval on a track."""

    name: str
    cat: str
    track: Track
    t0: float
    t1: float
    clock: str = SIM_CLOCK
    args: Optional[dict] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True, slots=True)
class CounterRecord:
    """A sampled value at one instant."""

    name: str
    track: Track
    t: float
    value: float
    clock: str = SIM_CLOCK


@dataclass(frozen=True, slots=True)
class InstantRecord:
    """A point event."""

    name: str
    cat: str
    track: Track
    t: float
    clock: str = SIM_CLOCK
    args: Optional[dict] = None


@dataclass
class _Ring:
    """One bounded buffer plus its overwrite count."""

    buffer: Deque
    dropped: int = 0

    def append(self, record) -> None:
        if len(self.buffer) == self.buffer.maxlen:
            self.dropped += 1
        self.buffer.append(record)


class Tracer:
    """Bounded collector of span/counter/instant records.

    Parameters
    ----------
    capacity:
        Ring size *per record kind* (spans, counters, instants each get
        their own ring, so a counter flood cannot evict spans).  Must be
        ≥ 1.
    enabled:
        Initial state; flip :attr:`enabled` at any time.  A disabled
        tracer's record methods still work when called directly — the
        flag is the contract instrumentation sites check *before*
        calling, not a gate inside the hot path.
    """

    __slots__ = ("enabled", "capacity", "_spans", "_counters", "_instants", "_epoch")

    def __init__(self, capacity: int = 65536, enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self._spans = _Ring(deque(maxlen=self.capacity))
        self._counters = _Ring(deque(maxlen=self.capacity))
        self._instants = _Ring(deque(maxlen=self.capacity))
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        track: Track,
        t0: float,
        t1: float,
        clock: str = SIM_CLOCK,
        **args,
    ) -> None:
        """Record a completed interval."""
        self._spans.append(
            SpanRecord(name, cat, track, t0, t1, clock, args or None)
        )

    def counter(
        self,
        name: str,
        track: Track,
        t: float,
        value: float,
        clock: str = SIM_CLOCK,
    ) -> None:
        """Record a sampled value."""
        self._counters.append(CounterRecord(name, track, t, value, clock))

    def instant(
        self,
        name: str,
        cat: str,
        track: Track,
        t: float,
        clock: str = SIM_CLOCK,
        **args,
    ) -> None:
        """Record a point event."""
        self._instants.append(
            InstantRecord(name, cat, track, t, clock, args or None)
        )

    @contextmanager
    def wall_span(self, name: str, cat: str, track: Track, **args) -> Iterator[None]:
        """Record the wall-clock extent of a ``with`` block.

        An exception escaping the block still records the span — with
        ``error: True`` in its args — and propagates."""
        t0 = self.wall_time()
        failed = False
        try:
            yield
        except BaseException:
            failed = True
            raise
        finally:
            if failed:
                args = dict(args, error=True)
            self.span(name, cat, track, t0, self.wall_time(), WALL_CLOCK, **args)

    def wall_time(self) -> float:
        """Seconds since this tracer was created (the wall-clock origin)."""
        return time.perf_counter() - self._epoch

    # -- access --------------------------------------------------------
    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        return tuple(self._spans.buffer)

    @property
    def counters(self) -> Tuple[CounterRecord, ...]:
        return tuple(self._counters.buffer)

    @property
    def instants(self) -> Tuple[InstantRecord, ...]:
        return tuple(self._instants.buffer)

    @property
    def dropped_spans(self) -> int:
        return self._spans.dropped

    @property
    def dropped_counters(self) -> int:
        return self._counters.dropped

    @property
    def dropped_instants(self) -> int:
        return self._instants.dropped

    @property
    def dropped(self) -> int:
        """Total records overwritten by the ring buffers."""
        return (
            self._spans.dropped
            + self._counters.dropped
            + self._instants.dropped
        )

    def __len__(self) -> int:
        """Records currently held (never exceeds ``3 × capacity``)."""
        return (
            len(self._spans.buffer)
            + len(self._counters.buffer)
            + len(self._instants.buffer)
        )

    def clear(self) -> None:
        """Drop all records and reset the overwrite counters."""
        for ring in (self._spans, self._counters, self._instants):
            ring.buffer.clear()
            ring.dropped = 0

    def counts(self) -> Dict[str, int]:
        """Record and drop counts, JSON-able (the CLI summary's header)."""
        return {
            "spans": len(self._spans.buffer),
            "counters": len(self._counters.buffer),
            "instants": len(self._instants.buffer),
            "dropped_spans": self._spans.dropped,
            "dropped_counters": self._counters.dropped,
            "dropped_instants": self._instants.dropped,
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Tracer {state} capacity={self.capacity} "
            f"records={len(self)} dropped={self.dropped}>"
        )


class _NullTracer(Tracer):
    """The default active tracer: permanently disabled, holds nothing.

    Attempts to enable it raise — a record written here is discarded,
    so an "enabled" null tracer would silently lose everything.  Its
    record methods are explicit no-ops: even a hook that skips the
    ``enabled`` check cannot make the null tracer hold state.
    """

    __slots__ = ()

    def __init__(self):
        super().__init__(capacity=1, enabled=False)

    def span(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def __setattr__(self, key, value):
        if key == "enabled" and value:
            raise ValueError(
                "the null tracer cannot be enabled; install a real Tracer "
                "via tracing()/set_active_tracer()"
            )
        super().__setattr__(key, value)


#: The permanently-disabled default (reads as ``enabled == False``).
NULL_TRACER = _NullTracer()

_ACTIVE: Tracer = NULL_TRACER


def active_tracer() -> Tracer:
    """The process-wide tracer instrumentation hooks report to."""
    return _ACTIVE


def set_active_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` (``None`` restores the null tracer).

    Returns the previously active tracer so callers can restore it;
    prefer the :func:`tracing` context manager.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the active tracer for the extent of a block."""
    previous = set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(previous)
