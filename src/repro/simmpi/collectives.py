"""Collective operations built on simulated point-to-point.

Algorithms follow the MPICH-1 era choices that shaped the paper's traffic
patterns:

* ``barrier`` — dissemination (⌈log₂p⌉ rounds of 0-byte sendrecv);
* ``bcast`` / ``reduce`` — binomial trees;
* ``allreduce`` — reduce to 0 + bcast;
* ``gather`` / ``scatter`` — linear to/from the root (this serialisation
  on the root's link is the transpose experiment's load imbalance);
* ``allgather`` — ring;
* ``alltoall`` — pairwise exchange (p−1 simultaneous sendrecv steps),
  which keeps every node's links busy for the whole operation — the
  traffic pattern behind NAS FT's communication phase.

Every collective supports real payloads (lists/arrays move and the result
is semantically correct) and synthetic mode (``nbytes``/``nbytes_each``
given, ``None`` payloads travel) for full-scale problem classes.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

import numpy as np

from repro.hardware.activity import CpuActivity
from repro.sim.events import Event

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]

#: frequency-dependent cycles charged per byte combined in a reduction
REDUCE_CYCLES_PER_BYTE = 1.0

CollGen = Generator[Event, object, object]


def _combine(a: object, b: object, op: Optional[Callable] = None) -> object:
    """Element-wise combination for reductions (default: sum)."""
    if a is None or b is None:
        return None  # synthetic mode
    if op is not None:
        return op(a, b)
    if isinstance(a, np.ndarray):
        return a + b
    return a + b


def _charge_copy(comm, nbytes: int) -> CollGen:
    """Charge a local memcpy (self-exchange part of collectives)."""
    cost = comm.memory.stream_copy_cost(int(nbytes))
    yield from comm.cpu.run_cycles(cost.cpu_cycles, state=CpuActivity.ACTIVE)
    yield from comm.cpu.stall(cost.stall_seconds, CpuActivity.MEMSTALL)
    return None


def _charge_reduce_op(comm, nbytes: int) -> CollGen:
    yield from comm.cpu.run_cycles(
        nbytes * REDUCE_CYCLES_PER_BYTE, state=CpuActivity.ACTIVE
    )
    return None


def barrier(comm) -> CollGen:
    """Dissemination barrier: ⌈log₂p⌉ rounds of zero-byte exchanges."""
    tag = comm.next_collective_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return None
    step = 1
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from comm.sendrecv(None, dest=dst, source=src, tag=tag, nbytes=0)
        step <<= 1
    return None


def bcast(
    comm, payload: object = None, root: int = 0, nbytes: Optional[int] = None
) -> CollGen:
    """Binomial-tree broadcast; returns the payload on every rank."""
    tag = comm.next_collective_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    relrank = (rank - root) % size

    mask = 1
    received = payload if rank == root else None
    while mask < size:
        if relrank & mask:
            src = (rank - mask) % size
            received = yield from comm.recv(source=src, tag=tag)
            break
        mask <<= 1
    # After the loop, ``mask`` is either the bit we received on or (for the
    # root) the first power of two >= size; fan out on all lower bits.
    mask >>= 1
    while mask > 0:
        if relrank + mask < size:
            dst = (rank + mask) % size
            yield from comm.send(received, dest=dst, tag=tag, nbytes=nbytes)
        mask >>= 1
    return received


def reduce(
    comm,
    value: object,
    root: int = 0,
    nbytes: Optional[int] = None,
    op: Optional[Callable] = None,
) -> CollGen:
    """Binomial-tree reduction; returns the result on the root, else None."""
    tag = comm.next_collective_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    from repro.simmpi.message import payload_nbytes

    block = payload_nbytes(value) if nbytes is None else int(nbytes)
    relrank = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if relrank & mask:
            dst = (relrank - mask + root) % size
            yield from comm.send(acc, dest=dst, tag=tag, nbytes=nbytes)
            acc = None
            break
        peer_rel = relrank | mask
        if peer_rel < size:
            src = (peer_rel + root) % size
            other = yield from comm.recv(source=src, tag=tag)
            yield from _charge_reduce_op(comm, block)
            acc = _combine(acc, other, op)
        mask <<= 1
    return acc if rank == root else None


def allreduce(
    comm, value: object, nbytes: Optional[int] = None, op: Optional[Callable] = None
) -> CollGen:
    """Reduce to rank 0 then broadcast (the MPICH-1 composition)."""
    result = yield from reduce(comm, value, root=0, nbytes=nbytes, op=op)
    result = yield from bcast(comm, result, root=0, nbytes=nbytes)
    return result


def gather(
    comm, value: object, root: int = 0, nbytes: Optional[int] = None
) -> CollGen:
    """Linear gather: everyone sends to the root; root returns the list."""
    tag = comm.next_collective_tag()
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm.send(value, dest=root, tag=tag, nbytes=nbytes)
        return None
    from repro.simmpi.message import payload_nbytes

    results: List[object] = [None] * size
    results[root] = value
    block = nbytes if nbytes is not None else payload_nbytes(value)
    yield from _charge_copy(comm, block)
    for src in range(size):
        if src == root:
            continue
        results[src] = yield from comm.recv(source=src, tag=tag)
    return results


def scatter(
    comm,
    values: Optional[Sequence[object]],
    root: int = 0,
    nbytes: Optional[int] = None,
) -> CollGen:
    """Linear scatter from the root; returns this rank's element."""
    tag = comm.next_collective_tag()
    size, rank = comm.size, comm.rank
    if rank == root:
        if values is None:
            values = [None] * size
        if len(values) != size:
            raise ValueError(
                f"scatter needs {size} values at the root, got {len(values)}"
            )
        from repro.simmpi.message import payload_nbytes

        for dst in range(size):
            if dst == root:
                continue
            yield from comm.send(values[dst], dest=dst, tag=tag, nbytes=nbytes)
        block = nbytes if nbytes is not None else payload_nbytes(values[root])
        yield from _charge_copy(comm, block)
        return values[root]
    return (yield from comm.recv(source=root, tag=tag))


def allgather(comm, value: object, nbytes: Optional[int] = None) -> CollGen:
    """Ring allgather: p−1 steps, passing the newest block rightward."""
    tag = comm.next_collective_tag()
    size, rank = comm.size, comm.rank
    results: List[object] = [None] * size
    results[rank] = value
    if size == 1:
        return results
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry = value
    for step in range(size - 1):
        # Same tag each step: successive messages from the same left
        # neighbour are FIFO (non-overtaking), so steps cannot mix.
        carry = yield from comm.sendrecv(
            carry, dest=right, source=left, tag=tag, nbytes=nbytes
        )
        results[(rank - step - 1) % size] = carry
    return results


def alltoall(
    comm,
    values: Optional[Sequence[object]] = None,
    nbytes_each: Optional[int] = None,
) -> CollGen:
    """Pairwise-exchange all-to-all; returns the per-source list.

    Exactly one of ``values`` (length-p payload list) or ``nbytes_each``
    (synthetic block size) must describe the data.
    """
    tag = comm.next_collective_tag()
    size, rank = comm.size, comm.rank
    if values is None and nbytes_each is None:
        raise ValueError("alltoall needs values or nbytes_each")
    if values is not None and len(values) != size:
        raise ValueError(f"alltoall needs {size} values, got {len(values)}")

    results: List[object] = [None] * size
    own = values[rank] if values is not None else None
    results[rank] = own
    self_bytes = nbytes_each if nbytes_each is not None else 0
    if values is not None and nbytes_each is None:
        from repro.simmpi.message import payload_nbytes

        self_bytes = payload_nbytes(own)
    yield from _charge_copy(comm, self_bytes)

    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        outgoing = values[dst] if values is not None else None
        results[src] = yield from comm.sendrecv(
            outgoing, dest=dst, source=src, tag=tag, nbytes=nbytes_each
        )
    return results
