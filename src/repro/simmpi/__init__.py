"""Simulated MPI (MPICH-1.2.5-over-TCP semantics) on the cluster model.

Point-to-point with eager/rendezvous protocols, nonblocking requests,
MPICH-era collective algorithms, and the progress-engine CPU wait policy
that makes communication look *busy* to ``/proc/stat`` — the substrate
the paper's DVS study runs on.
"""

from repro.simmpi.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from repro.simmpi.communicator import COLLECTIVE_TAG_BASE, Communicator
from repro.simmpi.datatypes import VectorType
from repro.simmpi.launcher import SpmdResult, run_spmd
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, Status, payload_nbytes
from repro.simmpi.request import Request
from repro.simmpi.world import World

__all__ = [
    "World",
    "Communicator",
    "Request",
    "Message",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "payload_nbytes",
    "VectorType",
    "COLLECTIVE_TAG_BASE",
    "SpmdResult",
    "run_spmd",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]
