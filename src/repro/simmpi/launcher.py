"""SPMD launcher: run one rank program per cluster node.

The equivalent of ``mpiexec -n <p> python program.py`` against the
simulated cluster.  A *rank program* is a callable taking a
:class:`~repro.simmpi.communicator.Communicator` and returning a
generator; its return value becomes that rank's entry in the
:class:`SpmdResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.hardware.cluster import Cluster
from repro.simmpi.world import World

__all__ = ["SpmdResult", "run_spmd"]

RankProgram = Callable[..., Generator]


@dataclass(frozen=True)
class SpmdResult:
    """Outcome of one SPMD run."""

    returns: List[object]  #: per-rank return values
    start: float  #: simulation time when the job started
    end: float  #: simulation time when the last rank finished

    @property
    def duration(self) -> float:
        """Job wall time (the paper's *delay* / time-to-solution)."""
        return self.end - self.start


def run_spmd(
    cluster: Cluster,
    program: RankProgram,
    n_ranks: Optional[int] = None,
    program_args: tuple = (),
) -> SpmdResult:
    """Run ``program`` on the first ``n_ranks`` nodes of ``cluster``.

    Blocks (in real time) until the simulated job completes, then closes
    all power-accounting segments so meters and timelines are consistent.
    """
    n = cluster.n_nodes if n_ranks is None else n_ranks
    if not 1 <= n <= cluster.n_nodes:
        raise ValueError(
            f"n_ranks must be in [1, {cluster.n_nodes}], got {n_ranks}"
        )
    world = World(cluster, size=n)
    engine = cluster.engine
    start = engine.now
    procs = [
        engine.process(program(world.comm(rank), *program_args), name=f"rank{rank}")
        for rank in range(n)
    ]
    all_done = engine.all_of(procs)
    engine.run(until=all_done)
    end = engine.now
    # Let any trailing progress-engine events drain (delivered but unread
    # messages do not change node power, but keep the queue clean).
    cluster.finalize()
    return SpmdResult(returns=[p.value for p in procs], start=start, end=end)
