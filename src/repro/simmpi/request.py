"""Nonblocking-operation requests (``MPI_Request`` equivalents)."""

from __future__ import annotations

from typing import Optional

from repro.simmpi.message import Status
from repro.sim.events import Event

__all__ = ["Request"]


class Request:
    """Handle for a pending isend/irecv.

    Completion is an :class:`~repro.sim.events.Event` whose value is the
    received payload (irecv) or ``None`` (isend).  The communicator's
    ``wait``/``waitall`` drive the CPU wait-policy while these complete —
    a bare ``yield request.completion`` would wait without burning the
    busy-poll power a real MPICH rank pays.
    """

    __slots__ = ("completion", "kind", "_status")

    def __init__(self, completion: Event, kind: str):
        if kind not in ("send", "recv"):
            raise ValueError(f"kind must be 'send' or 'recv', got {kind!r}")
        self.completion = completion
        self.kind = kind
        self._status: Optional[Status] = None

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """Whether the operation has finished (``MPI_Test`` semantics)."""
        return self.completion.processed

    @property
    def status(self) -> Optional[Status]:
        """The receive status, once complete (``None`` for sends)."""
        return self._status

    def _set_status(self, status: Status) -> None:
        self._status = status

    @property
    def value(self) -> object:
        """The received payload (requires completion)."""
        return self.completion.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "complete" if self.complete else "pending"
        return f"<Request {self.kind} {state}>"
