"""Message envelopes and payload sizing for the simulated MPI.

A message travels as an *envelope* posted into the destination's matching
queue at send time (which preserves MPI's non-overtaking order), plus a
data transfer that completes the envelope's ``data_done`` event.  Eager
messages start their transfer immediately; rendezvous messages wait for
the receiver to fire ``cts`` (clear-to-send) first.

Payloads may be real Python/numpy objects (verification mode — the bytes
that move are the bytes you get) or ``None`` with an explicit byte count
(synthetic mode — full-scale problem classes without the memory
footprint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.events import Event

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "Status",
    "payload_nbytes",
]

#: Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: object) -> int:
    """Wire size of a payload object.

    numpy arrays use their buffer size; ``bytes``-likes their length;
    other Python objects are costed like MPICH's pickled generic-object
    path with a small envelope-relative estimate.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, complex, np.generic)):
        return 16
    if isinstance(payload, (list, tuple)):
        return 16 + sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, str):
        return 16 + len(payload.encode())
    if isinstance(payload, dict):
        return 16 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    # Fallback: a conservative flat estimate for odd objects.
    return 64


@dataclass(frozen=True)
class Status:
    """Receive status, mirroring ``MPI_Status``."""

    source: int
    tag: int
    nbytes: int


@dataclass
class Message:
    """An in-flight message envelope."""

    source: int
    dest: int
    tag: int
    nbytes: int
    payload: object = None
    seq: int = 0  #: global send order, for deterministic debugging
    eager: bool = True
    #: receiver fires this to authorise a rendezvous transfer
    cts: Optional[Event] = None
    #: fired when the payload has fully arrived at the receiver
    data_done: Optional[Event] = None
    send_time: float = field(default=0.0)

    def matches(self, source: int, tag: int) -> bool:
        """Whether this envelope matches a receive for ``(source, tag)``."""
        if source != ANY_SOURCE and self.source != source:
            return False
        if tag != ANY_TAG and self.tag != tag:
            return False
        return True

    def status(self) -> Status:
        return Status(source=self.source, tag=self.tag, nbytes=self.nbytes)
