"""The per-rank MPI interface.

API style follows mpi4py's lowercase convention, except that every call
that can take simulated time is a *generator* to be driven with
``yield from`` inside a rank program::

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
        else:
            data = yield from comm.recv(source=0, tag=7)

Protocol model (MPICH 1.2.5 over TCP):

* messages at most ``eager_threshold_bytes`` are **eager**: the sender
  pays the per-message software overhead, hands the payload to the
  progress engine (socket buffering) and returns; the payload flows
  immediately;
* larger messages use **rendezvous**: the envelope travels ahead, the
  transfer starts only when the receiver matches it (clear-to-send), and
  the send completes with the transfer;
* while a rank *waits*, its CPU follows the progress-engine policy: if
  any traffic is flowing on the node's links, it busy-polls doing
  protocol byte-work (PROTO over a SPIN floor — fully *busy* in
  ``/proc/stat``, which is what blinds the cpuspeed daemon, paper §4);
  with no traffic it spins briefly and then blocks in the kernel (IDLE) —
  the state a backpressured bulk sender sits in.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.hardware.activity import CpuActivity
from repro.hardware.cpu import SimCPU
from repro.hardware.node import Node
from repro.obs.instrument import traced_generator
from repro.obs.tracer import active_tracer
from repro.sim.events import Event
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, Status, payload_nbytes
from repro.simmpi.request import Request
from repro.simmpi.world import World

__all__ = ["Communicator"]

#: Base of the internal tag space reserved for collective operations.
COLLECTIVE_TAG_BASE = 1 << 20


class Communicator:
    """One rank's view of the world communicator."""

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise ValueError(f"rank {rank} out of range for size {world.size}")
        self.world = world
        self.rank = rank
        self._coll_seq = 0

    # ------------------------------------------------------------------
    # topology & platform access
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.size

    @property
    def engine(self):
        return self.world.engine

    @property
    def node(self) -> Node:
        return self.world.cluster.nodes[self.rank]

    @property
    def cpu(self) -> SimCPU:
        return self.node.cpu

    @property
    def memory(self):
        return self.node.memory

    def wtime(self) -> float:
        """Current simulated time (``MPI_Wtime``)."""
        return self.engine.now

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(
        self,
        payload: object = None,
        dest: int = 0,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, object, Request]:
        """Nonblocking send; returns a :class:`Request`.

        ``nbytes`` overrides the payload's wire size (synthetic mode:
        ``payload=None, nbytes=...``).
        """
        self._check_peer(dest)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        if size < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        cal = self.world.calibration

        yield from self._charge_cycles(cal.message_overhead_cycles)

        msg = Message(
            source=self.rank,
            dest=dest,
            tag=tag,
            nbytes=size,
            payload=payload,
            seq=self.world.next_seq(),
            eager=size <= cal.eager_threshold_bytes,
            send_time=self.engine.now,
        )
        msg.data_done = self.engine.event()
        completion = self.engine.event()
        max_rate = self._cpu_feed_rate()

        if msg.eager:
            self.world.post(msg)
            self.world.start_transfer(msg, max_rate)
            completion.succeed(None)  # buffered: sender may proceed
        else:
            msg.cts = self.engine.event()
            self.world.post(msg)
            self.world.start_rendezvous(msg, completion, max_rate)
        return Request(completion, "send")

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Request:
        """Nonblocking receive; matching progresses in the background."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        completion = self.engine.event()
        req = Request(completion, "recv")
        self.engine.process(
            self._recv_progress(source, tag, req),
            name=f"irecv[rank{self.rank}]",
        )
        return req

    def _recv_progress(
        self, source: int, tag: int, req: Request
    ) -> Generator[Event, object, None]:
        inbox = self.world.inboxes[self.rank]
        matched = yield inbox.get(lambda m: m.matches(source, tag))
        msg: Message = matched  # type: ignore[assignment]
        if not msg.eager:
            assert msg.cts is not None
            msg.cts.succeed(None)  # clear-to-send
        assert msg.data_done is not None
        yield msg.data_done
        req._set_status(msg.status())
        req.completion.succeed(msg.payload)

    def iprobe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Optional["Status"]:
        """Non-blocking probe: status of a matchable envelope, or None.

        Like ``MPI_Iprobe``, a positive result does not mean the payload
        has arrived — only that a matching message has been initiated
        (its envelope is queued); a subsequent ``recv`` will match it.
        """
        if source != ANY_SOURCE:
            self._check_peer(source)
        inbox = self.world.inboxes[self.rank]
        msg = inbox.probe(lambda m: m.matches(source, tag))
        return msg.status() if msg is not None else None

    def wait(self, request: Request) -> Generator[Event, object, object]:
        """Wait for a request under the progress-engine CPU policy.

        For receives, additionally charges the non-overlappable unpack
        cycles once the payload has arrived.
        """
        value = yield from self._progress_wait(request.completion)
        if request.kind == "recv":
            cal = self.world.calibration
            status = request.status
            nbytes = status.nbytes if status is not None else 0
            cycles = cal.message_overhead_cycles + nbytes * cal.serial_cycles_per_byte
            yield from self._charge_cycles(cycles)
        return value

    def waitall(
        self, requests: Sequence[Request]
    ) -> Generator[Event, object, List[object]]:
        """Wait for all requests; returns their values in order."""
        values: List[object] = []
        for req in requests:
            values.append((yield from self.wait(req)))
        return values

    def send(
        self,
        payload: object = None,
        dest: int = 0,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, object, None]:
        """Blocking send (completes locally for eager messages)."""
        gen = self._send_phase(payload, dest, tag, nbytes)
        tracer = active_tracer()
        if not tracer.enabled:
            return gen
        return traced_generator(
            tracer, self.engine, gen, "send", "mpi.p2p", self.rank,
            {"dest": dest, "tag": tag},
        )

    def _send_phase(
        self,
        payload: object,
        dest: int,
        tag: int,
        nbytes: Optional[int],
    ) -> Generator[Event, object, None]:
        req = yield from self.isend(payload, dest, tag, nbytes)
        yield from self.wait(req)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Generator[Event, object, object]:
        """Blocking receive; returns the payload."""
        gen = self._recv_phase(source, tag)
        tracer = active_tracer()
        if not tracer.enabled:
            return gen
        return traced_generator(
            tracer, self.engine, gen, "recv", "mpi.p2p", self.rank,
            {"source": source, "tag": tag},
        )

    def _recv_phase(
        self, source: int, tag: int
    ) -> Generator[Event, object, object]:
        req = self.irecv(source, tag)
        return (yield from self.wait(req))

    def sendrecv(
        self,
        payload: object,
        dest: int,
        source: int,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, object, object]:
        """Simultaneous send+receive (deadlock-free pairwise exchange)."""
        gen = self._sendrecv_phase(payload, dest, source, tag, nbytes)
        tracer = active_tracer()
        if not tracer.enabled:
            return gen
        return traced_generator(
            tracer, self.engine, gen, "sendrecv", "mpi.p2p", self.rank,
            {"dest": dest, "source": source, "tag": tag},
        )

    def _sendrecv_phase(
        self,
        payload: object,
        dest: int,
        source: int,
        tag: int,
        nbytes: Optional[int],
    ) -> Generator[Event, object, object]:
        rreq = self.irecv(source, tag)
        sreq = yield from self.isend(payload, dest, tag, nbytes)
        yield from self.wait(sreq)
        return (yield from self.wait(rreq))

    # ------------------------------------------------------------------
    # collectives (implemented in collectives.py, re-exported as methods)
    # ------------------------------------------------------------------
    def _traced_collective(self, name: str, gen, args: Optional[dict] = None):
        """Wrap a collective's generator in a span (untouched when the
        active tracer is disabled — the zero-cost path returns ``gen``)."""
        tracer = active_tracer()
        if not tracer.enabled:
            return gen
        return traced_generator(
            tracer, self.engine, gen, name, "mpi.coll", self.rank, args
        )

    def barrier(self):
        from repro.simmpi import collectives

        return self._traced_collective("barrier", collectives.barrier(self))

    def bcast(self, payload: object = None, root: int = 0, nbytes: Optional[int] = None):
        from repro.simmpi import collectives

        return self._traced_collective(
            "bcast", collectives.bcast(self, payload, root, nbytes),
            {"root": root},
        )

    def reduce(self, value: object, root: int = 0, nbytes: Optional[int] = None):
        from repro.simmpi import collectives

        return self._traced_collective(
            "reduce", collectives.reduce(self, value, root, nbytes),
            {"root": root},
        )

    def allreduce(self, value: object, nbytes: Optional[int] = None):
        from repro.simmpi import collectives

        return self._traced_collective(
            "allreduce", collectives.allreduce(self, value, nbytes)
        )

    def gather(self, value: object, root: int = 0, nbytes: Optional[int] = None):
        from repro.simmpi import collectives

        return self._traced_collective(
            "gather", collectives.gather(self, value, root, nbytes),
            {"root": root},
        )

    def scatter(self, values: Optional[Sequence[object]], root: int = 0,
                nbytes: Optional[int] = None):
        from repro.simmpi import collectives

        return self._traced_collective(
            "scatter", collectives.scatter(self, values, root, nbytes),
            {"root": root},
        )

    def allgather(self, value: object, nbytes: Optional[int] = None):
        from repro.simmpi import collectives

        return self._traced_collective(
            "allgather", collectives.allgather(self, value, nbytes)
        )

    def alltoall(self, values: Optional[Sequence[object]] = None,
                 nbytes_each: Optional[int] = None):
        from repro.simmpi import collectives

        return self._traced_collective(
            "alltoall", collectives.alltoall(self, values, nbytes_each)
        )

    def next_collective_tag(self) -> int:
        """Fresh internal tag; stays in lockstep across SPMD ranks."""
        self._coll_seq += 1
        return COLLECTIVE_TAG_BASE + self._coll_seq

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} out of range for size {self.size}")

    def _charge_cycles(self, cycles: float) -> Generator[Event, object, None]:
        """Charge MPI software cycles (busy, frequency-dependent)."""
        if cycles > 0:
            yield from self.cpu.run_cycles(cycles, state=CpuActivity.PROTO)

    def _cpu_feed_rate(self) -> Optional[float]:
        """Max payload rate (bytes/s) the CPU can push at its current clock."""
        cpb = self.world.calibration.proto_cycles_per_byte
        if cpb <= 0:
            return None
        return self.cpu.frequency / cpb

    def _proto_utilization(self) -> float:
        """CPU share needed to keep a saturated link fed at current f."""
        cal = self.world.calibration
        if cal.proto_cycles_per_byte <= 0:
            return 0.0
        rate = cal.network.payload_rate
        return min(1.0, cal.proto_cycles_per_byte * rate / self.cpu.frequency)

    def _progress_wait(
        self, event: Event
    ) -> Generator[Event, object, object]:
        """Wait for ``event`` under the MPICH-1 progress-engine policy."""
        engine = self.engine
        fabric = self.world.fabric
        cpu = self.cpu
        cal = self.world.calibration
        nid = self.rank
        try:
            while not event.processed:
                if fabric.traffic_active(nid):
                    # Bytes are flowing on our links: the progress engine is
                    # busy-polling and doing protocol byte-work.
                    cpu.set_state(
                        CpuActivity.PROTO,
                        self._proto_utilization(),
                        floor=CpuActivity.SPIN,
                    )
                    yield engine.any_of(
                        [event, fabric.activity_changed(nid), cpu.freq_changed]
                    )
                    continue
                # Nothing moving: spin briefly, then block in the kernel.
                cpu.set_state(CpuActivity.SPIN, 1.0)
                threshold = cal.spin_block_threshold
                if threshold == float("inf"):
                    yield engine.any_of([event, fabric.activity_changed(nid)])
                    continue
                deadline = engine.timeout(threshold)
                yield engine.any_of(
                    [event, fabric.activity_changed(nid), deadline]
                )
                if event.processed or fabric.traffic_active(nid):
                    continue
                if not deadline.processed:
                    continue  # activity flapped; restart the spin window
                cpu.set_state(CpuActivity.IDLE, 1.0)
                yield engine.any_of([event, fabric.activity_changed(nid)])
        finally:
            cpu.set_state(CpuActivity.IDLE, 1.0)
        if not event.ok:
            raise event.value  # type: ignore[misc]
        return event.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Communicator rank={self.rank}/{self.size}>"
