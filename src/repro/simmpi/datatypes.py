"""Derived datatypes: the strided vector type (``MPI_Type_vector``).

The paper's Figure 8b sends "a 4 Kbyte message with stride of 64 Bytes" —
an MPI vector type whose packing gathers elements scattered across a
larger extent.  :class:`VectorType` provides both halves of that story:

* the *cost* of packing/unpacking through the memory model (the extra
  frequency-sensitive work that steepens Fig 8b's delay crescendo vs the
  contiguous 8a), and
* *real* pack/unpack of numpy arrays, so verification-mode workloads can
  move strided data correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.memory import AccessCost, MemoryHierarchy
from repro.util.validation import check_positive

__all__ = ["VectorType"]


@dataclass(frozen=True)
class VectorType:
    """``count`` blocks of ``blocklength`` elements, ``stride`` apart.

    All three are in *elements*, as in MPI; ``element_bytes`` sizes them.
    """

    count: int
    blocklength: int = 1
    stride: int = 1
    element_bytes: int = 8

    def __post_init__(self) -> None:
        check_positive("count", self.count)
        check_positive("blocklength", self.blocklength)
        check_positive("element_bytes", self.element_bytes)
        if self.stride < self.blocklength:
            raise ValueError(
                f"stride ({self.stride}) must be >= blocklength "
                f"({self.blocklength}); blocks may not overlap"
            )

    # ------------------------------------------------------------------
    @property
    def elements(self) -> int:
        """Total payload elements."""
        return self.count * self.blocklength

    @property
    def payload_bytes(self) -> int:
        """Bytes that travel on the wire."""
        return self.elements * self.element_bytes

    @property
    def extent_elements(self) -> int:
        """Memory span from the first to one past the last element."""
        return (self.count - 1) * self.stride + self.blocklength

    @property
    def extent_bytes(self) -> int:
        return self.extent_elements * self.element_bytes

    @property
    def is_contiguous(self) -> bool:
        return self.stride == self.blocklength

    # ------------------------------------------------------------------
    def pack_cost(self, memory: MemoryHierarchy) -> AccessCost:
        """CPU cost of gathering the payload into a contiguous buffer.

        Contiguous types cost a plain stream copy; strided types pay a
        per-element walk across the whole extent (defeating spatial
        locality when the byte-stride reaches a cache line).
        """
        if self.is_contiguous:
            return memory.stream_copy_cost(self.payload_bytes)
        return memory.strided_walk_cost(
            max(self.extent_bytes, self.stride * self.element_bytes),
            self.stride * self.element_bytes,
            self.elements,
        )

    # ------------------------------------------------------------------
    def pack(self, source: np.ndarray) -> np.ndarray:
        """Gather the typed elements from ``source`` (1-D, >= extent)."""
        source = np.asarray(source)
        if source.ndim != 1 or source.size < self.extent_elements:
            raise ValueError(
                f"source must be 1-D with >= {self.extent_elements} elements"
            )
        out = np.empty(self.elements, dtype=source.dtype)
        for b in range(self.count):
            start = b * self.stride
            out[b * self.blocklength : (b + 1) * self.blocklength] = source[
                start : start + self.blocklength
            ]
        return out

    def unpack(self, packed: np.ndarray, target: np.ndarray) -> None:
        """Scatter a packed buffer back into ``target`` in place."""
        packed = np.asarray(packed)
        if packed.size != self.elements:
            raise ValueError(
                f"packed buffer must hold {self.elements} elements, "
                f"got {packed.size}"
            )
        if target.ndim != 1 or target.size < self.extent_elements:
            raise ValueError(
                f"target must be 1-D with >= {self.extent_elements} elements"
            )
        for b in range(self.count):
            start = b * self.stride
            target[start : start + self.blocklength] = packed[
                b * self.blocklength : (b + 1) * self.blocklength
            ]
