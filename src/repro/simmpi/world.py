"""The shared state of a simulated MPI job: matching queues and progress.

One :class:`World` exists per SPMD run.  It owns the per-rank matching
queues (:class:`~repro.sim.resources.FilterStore`), assigns global message
sequence numbers, and spawns the background *progress processes* that move
message payloads across the fabric — the moral equivalent of the kernel
TCP stack plus MPICH's progress engine doing its work asynchronously.

Progress processes deliberately do **not** touch rank CPU states: the CPU
cost of communication is charged in the rank's own context (message
overheads at post time, the poll/block wait policy while waiting, and the
serial unpack after arrival), which is where a real rank pays it.
"""

from __future__ import annotations

from itertools import count
from typing import Generator, List

from repro.hardware.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import FilterStore
from repro.simmpi.message import Message

__all__ = ["World"]


class World:
    """Shared communication state for one simulated MPI job."""

    def __init__(self, cluster: Cluster, size: int | None = None):
        n = cluster.n_nodes if size is None else size
        if not 1 <= n <= cluster.n_nodes:
            raise ValueError(
                f"world size must be in [1, {cluster.n_nodes}], got {size}"
            )
        self.cluster = cluster
        self._size = n
        self.engine: Engine = cluster.engine
        self.calibration = cluster.calibration
        self.fabric = cluster.fabric
        self.inboxes: List[FilterStore] = [
            FilterStore(self.engine) for _ in range(n)
        ]
        self._seq = count()
        #: total messages posted (for reporting)
        self.message_count = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the job (may be fewer than cluster nodes)."""
        return self._size

    def next_seq(self) -> int:
        self.message_count += 1
        return next(self._seq)

    def comm(self, rank: int):
        """The per-rank communicator view (lazy import avoids a cycle)."""
        from repro.simmpi.communicator import Communicator

        return Communicator(self, rank)

    # ------------------------------------------------------------------
    # progress processes
    # ------------------------------------------------------------------
    def post(self, msg: Message) -> None:
        """Deposit the envelope into the destination's matching queue.

        Envelopes are posted in send order, which preserves MPI's
        non-overtaking guarantee between matching (source, tag) pairs.
        """
        self.inboxes[msg.dest].put(msg)

    def start_transfer(self, msg: Message, max_rate: float | None) -> None:
        """Spawn the payload transfer; fires ``msg.data_done`` when done."""
        self.engine.process(
            self._transfer_progress(msg, max_rate),
            name=f"xfer[{msg.source}->{msg.dest}#{msg.seq}]",
        )

    def start_rendezvous(
        self, msg: Message, completion: Event, max_rate: float | None
    ) -> None:
        """Spawn the CTS-wait + transfer; fires ``completion`` at the end."""
        self.engine.process(
            self._rendezvous_progress(msg, completion, max_rate),
            name=f"rndv[{msg.source}->{msg.dest}#{msg.seq}]",
        )

    def _transfer_progress(
        self, msg: Message, max_rate: float | None
    ) -> Generator[Event, object, None]:
        yield from self.fabric.transfer(
            msg.source, msg.dest, msg.nbytes, max_rate=max_rate
        )
        assert msg.data_done is not None
        msg.data_done.succeed(msg)

    def _rendezvous_progress(
        self, msg: Message, completion: Event, max_rate: float | None
    ) -> Generator[Event, object, None]:
        assert msg.cts is not None and msg.data_done is not None
        yield msg.cts
        yield from self.fabric.transfer(
            msg.source, msg.dest, msg.nbytes, max_rate=max_rate
        )
        msg.data_done.succeed(msg)
        completion.succeed(None)
