"""repro — reproduction of *Improvement of Power-Performance Efficiency
for High-End Computing* (Ge, Feng, Cameron; IPPS 2005).

A PowerPack-style framework for analysing and optimising the
power-performance of distributed scientific applications under dynamic
voltage scaling, built on a calibrated discrete-event simulation of the
paper's platform (16 Pentium M laptops, 100 Mb Ethernet, MPICH-1).

The names exported here are the **stable public API** (see
``docs/API.md``): everything a script or notebook needs without deep
imports, re-exported lazily (PEP 562) so ``import repro`` stays cheap::

    from repro import Session, SweepTask, Tracer

    s = Session(use_cache=True, tracer=Tracer())
    run = s.run(workload, strategy)
    report = s.attribution(run)

Layers (bottom-up), for when you do want the deep modules:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.hardware` — DVFS ladder, CMOS power model, CPU/memory/
  network models, cluster assembly;
* :mod:`repro.simmpi` — simulated MPI (eager/rendezvous, collectives,
  progress-engine wait policy);
* :mod:`repro.dvs` — CPUFreq interface, cpuspeed daemon, the paper's
  three DVS strategies;
* :mod:`repro.measurement` — ACPI battery and Baytech meter emulation,
  PowerPack session, data alignment;
* :mod:`repro.metrics` — ED²P and weighted ED²P, operating-point
  selection, trade-off curves, per-phase energy attribution;
* :mod:`repro.workloads` — NAS FT, parallel matrix transpose, SPEC-like
  kernels, microbenchmarks;
* :mod:`repro.obs` — structured tracing/profiling and trace exporters;
* :mod:`repro.powercap` / :mod:`repro.faults` — cluster power-budget
  governor and fault-injection drills;
* :mod:`repro.serving` — request-driven multi-tier serving with
  per-request energy attribution and per-tier DVS;
* :mod:`repro.cache` — content-addressed run cache;
* :mod:`repro.analysis` / :mod:`repro.experiments` — crescendo sweeps,
  reporting, and one driver per paper table/figure.
"""

from typing import TYPE_CHECKING

__version__ = "1.2.0"

#: public name → defining module, the single source of truth for the
#: lazy facade below.  Every entry is importable as ``from repro import
#: <name>`` and asserted stable in ``tests/test_facade.py``.
_EXPORTS = {
    # front door
    "Session": "repro.session",
    # tracing / profiling (repro.obs)
    "Tracer": "repro.obs.tracer",
    "tracing": "repro.obs.tracer",
    "active_tracer": "repro.obs.tracer",
    "export_chrome_trace": "repro.obs.export",
    "export_jsonl": "repro.obs.export",
    "load_trace_file": "repro.obs.export",
    "power_counter_records": "repro.obs.export",
    "validate_chrome_trace": "repro.obs.export",
    # simulation engine (repro.sim)
    "Engine": "repro.sim.engine",
    "ColumnarEngine": "repro.sim.columnar",
    "EngineStats": "repro.sim.columnar",
    "ENGINE_MODES": "repro.sim.factory",
    "make_engine": "repro.sim.factory",
    "engine_mode": "repro.sim.factory",
    "set_engine_mode": "repro.sim.factory",
    "using_engine_mode": "repro.sim.factory",
    # power-series kernel (repro.hardware)
    "PowerTimeline": "repro.hardware.timeline",
    "EnergyCursor": "repro.hardware.timeline",
    "PowerSeries": "repro.hardware.series",
    "ClusterSeries": "repro.hardware.series",
    # cluster construction + technology scaling (repro.hardware)
    "Cluster": "repro.hardware.cluster",
    "NodeSpec": "repro.hardware.spec",
    "ClusterSpec": "repro.hardware.spec",
    "TechNode": "repro.hardware.scaling",
    "CoreKind": "repro.hardware.scaling",
    "CORE_O3": "repro.hardware.scaling",
    "CORE_IO": "repro.hardware.scaling",
    "TECH_NODES": "repro.hardware.scaling",
    "tech_node": "repro.hardware.scaling",
    "scaled_table": "repro.hardware.scaling",
    "scaled_calibration": "repro.hardware.scaling",
    # runs and sweeps
    "run_measured": "repro.analysis.runner",
    "traced_run": "repro.analysis.runner",
    "run_sweep": "repro.analysis.parallel",
    "SweepTask": "repro.analysis.parallel",
    "SweepError": "repro.analysis.parallel",
    "SweepEvent": "repro.analysis.parallel",
    # execution backends (repro.exec)
    "BACKENDS": "repro.exec.backends",
    "ExecBackend": "repro.exec.backends",
    "SerialBackend": "repro.exec.backends",
    "ProcessPoolBackend": "repro.exec.backends",
    "MpiBackend": "repro.exec.mpi",
    "resolve_backend": "repro.exec.backends",
    "mpi_available": "repro.exec.mpi",
    "RetryPolicy": "repro.exec.retry",
    "AttemptRecord": "repro.exec.retry",
    "WorkerLostError": "repro.exec.retry",
    "SweepTimeoutError": "repro.exec.retry",
    # chaos
    "run_chaos_sweep": "repro.faults.sweep",
    "ChaosTask": "repro.faults.sweep",
    "ChaosOutcome": "repro.faults.sweep",
    "FaultPlan": "repro.faults.spec",
    "FaultInjector": "repro.faults.injector",
    # serving
    "ServingWorkload": "repro.serving.spec",
    "TierSpec": "repro.serving.spec",
    "PoissonArrivals": "repro.serving.arrivals",
    "MMPPArrivals": "repro.serving.arrivals",
    "DiurnalArrivals": "repro.serving.arrivals",
    "run_serving": "repro.serving.runner",
    "TierDvsPolicy": "repro.serving.policy",
    "ServingTask": "repro.serving.sweep",
    "ServingOutcome": "repro.serving.sweep",
    "run_serving_sweep": "repro.serving.sweep",
    "ServingReport": "repro.metrics.serving",
    "build_serving_report": "repro.metrics.serving",
    # power capping (elastic control plane)
    "PowerBudget": "repro.powercap.budget",
    "PowerCapStrategy": "repro.powercap.strategy",
    "Action": "repro.powercap.actions",
    "GovernorPlan": "repro.powercap.actions",
    "Actuator": "repro.powercap.actuators",
    "ElasticPolicy": "repro.powercap.elastic",
    "ELASTIC_KNOBS": "repro.powercap.elastic",
    "ElasticServingPolicy": "repro.serving.elastic",
    # cache
    "RunCache": "repro.cache.store",
    "sweep_context": "repro.cache.context",
    # metrics
    "EnergyDelayPoint": "repro.metrics.records",
    "AttributionReport": "repro.metrics.attribution",
    "build_attribution_report": "repro.metrics.attribution",
    "ScalingReport": "repro.metrics.scaling",
    "build_scaling_report": "repro.metrics.scaling",
    "KnobCell": "repro.metrics.knobmap",
    "KnobMapReport": "repro.metrics.knobmap",
    # experiments
    "run_experiment": "repro.experiments.registry",
    "list_experiments": "repro.experiments.registry",
    # workloads
    "Workload": "repro.workloads.base",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.analysis.parallel import (
        SweepError,
        SweepEvent,
        SweepTask,
        run_sweep,
    )
    from repro.analysis.runner import run_measured, traced_run
    from repro.cache.context import sweep_context
    from repro.cache.store import RunCache
    from repro.exec.backends import (
        BACKENDS,
        ExecBackend,
        ProcessPoolBackend,
        SerialBackend,
        resolve_backend,
    )
    from repro.exec.mpi import MpiBackend, mpi_available
    from repro.exec.retry import (
        AttemptRecord,
        RetryPolicy,
        SweepTimeoutError,
        WorkerLostError,
    )
    from repro.experiments.registry import list_experiments, run_experiment
    from repro.faults.injector import FaultInjector
    from repro.faults.spec import FaultPlan
    from repro.faults.sweep import ChaosOutcome, ChaosTask, run_chaos_sweep
    from repro.hardware.cluster import Cluster
    from repro.hardware.scaling import (
        CORE_IO,
        CORE_O3,
        CoreKind,
        TECH_NODES,
        TechNode,
        scaled_calibration,
        scaled_table,
        tech_node,
    )
    from repro.hardware.spec import ClusterSpec, NodeSpec
    from repro.metrics.attribution import (
        AttributionReport,
        build_attribution_report,
    )
    from repro.metrics.knobmap import KnobCell, KnobMapReport
    from repro.metrics.scaling import ScalingReport, build_scaling_report
    from repro.metrics.records import EnergyDelayPoint
    from repro.metrics.serving import ServingReport, build_serving_report
    from repro.obs.export import (
        export_chrome_trace,
        export_jsonl,
        load_trace_file,
        validate_chrome_trace,
    )
    from repro.obs.tracer import Tracer, active_tracer, tracing
    from repro.powercap.actions import Action, GovernorPlan
    from repro.powercap.actuators import Actuator
    from repro.powercap.budget import PowerBudget
    from repro.powercap.elastic import ELASTIC_KNOBS, ElasticPolicy
    from repro.powercap.strategy import PowerCapStrategy
    from repro.serving.arrivals import (
        DiurnalArrivals,
        MMPPArrivals,
        PoissonArrivals,
    )
    from repro.serving.elastic import ElasticServingPolicy
    from repro.serving.policy import TierDvsPolicy
    from repro.sim.columnar import ColumnarEngine, EngineStats
    from repro.sim.engine import Engine
    from repro.sim.factory import (
        ENGINE_MODES,
        engine_mode,
        make_engine,
        set_engine_mode,
        using_engine_mode,
    )
    from repro.serving.runner import run_serving
    from repro.serving.spec import ServingWorkload, TierSpec
    from repro.serving.sweep import (
        ServingOutcome,
        ServingTask,
        run_serving_sweep,
    )
    from repro.session import Session
    from repro.workloads.base import Workload
