"""repro — reproduction of *Improvement of Power-Performance Efficiency
for High-End Computing* (Ge, Feng, Cameron; IPPS 2005).

A PowerPack-style framework for analysing and optimising the
power-performance of distributed scientific applications under dynamic
voltage scaling, built on a calibrated discrete-event simulation of the
paper's platform (16 Pentium M laptops, 100 Mb Ethernet, MPICH-1).

Layers (bottom-up):

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.hardware` — DVFS ladder, CMOS power model, CPU/memory/
  network models, cluster assembly;
* :mod:`repro.simmpi` — simulated MPI (eager/rendezvous, collectives,
  progress-engine wait policy);
* :mod:`repro.dvs` — CPUFreq interface, cpuspeed daemon, the paper's
  three DVS strategies;
* :mod:`repro.measurement` — ACPI battery and Baytech meter emulation,
  PowerPack session, data alignment;
* :mod:`repro.metrics` — ED²P and weighted ED²P, operating-point
  selection, trade-off curves;
* :mod:`repro.workloads` — NAS FT, parallel matrix transpose, SPEC-like
  kernels, microbenchmarks;
* :mod:`repro.analysis` / :mod:`repro.experiments` — crescendo sweeps,
  reporting, and one driver per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
