"""Power capping as a DVS strategy, composable with the paper's three.

:class:`PowerCapStrategy` plugs the cap governor into the existing
``prepare → run_spmd → teardown`` protocol, so every measurement helper
(:func:`repro.analysis.runner.run_measured`, crescendos, benchmarks)
works on capped runs unchanged.

Composition: an optional ``inner`` strategy (static, dynamic, adaptive,
cpuspeed) runs *under* the cap.  The trick is the
:meth:`~repro.dvs.strategy.DVSStrategy._make_cpufreq` factory hook — the
inner strategy is made to build its controllers and daemons against the
governor's :class:`~repro.dvs.capped.CappedCpuFreq` instances, so every
frequency request it ever issues resolves against the governor's
per-node ceilings.  Application-directed scaling keeps working inside
the budget; the budget wins when they conflict.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dvs.capped import CappedCpuFreq
from repro.dvs.controller import DvsController
from repro.dvs.strategy import DVSStrategy
from repro.hardware.cluster import Cluster

from repro.powercap.budget import PowerBudget
from repro.powercap.governor import CapGovernor, CapGovernorConfig
from repro.powercap.policy import CapPolicy, SlackRedistributionPolicy
from repro.powercap.resilience import ResilienceConfig

__all__ = ["PowerCapStrategy"]


class PowerCapStrategy(DVSStrategy):
    """Enforce a :class:`PowerBudget` for the duration of one run.

    Examples
    --------
    Cap a run and read the governor's compliance record afterwards::

        from repro.analysis import run_measured
        from repro.powercap import PowerBudget, PowerCapStrategy
        from repro.workloads import NasFT

        capped = PowerCapStrategy(PowerBudget(cluster_watts=130.0))
        run = run_measured(NasFT("S", n_ranks=8, iterations=3), capped)
        governor = capped.governor
        print(governor.achieved_average_watts(), governor.violation_count)

    Compose with the paper's dynamic strategy — application-directed
    scaling keeps working *inside* the budget, and the budget wins when
    they conflict::

        from repro.dvs.strategy import DynamicStrategy
        from repro.util.units import MHZ

        inner = DynamicStrategy(1400 * MHZ, regions=["fft"])
        capped = PowerCapStrategy(
            PowerBudget(cluster_watts=120.0), inner=inner
        )
        run = run_measured(NasFT("S", n_ranks=8, iterations=3), capped)

    Swap the allocation policy to the uniform baseline for an
    ablation-style comparison::

        from repro.powercap import UniformCapPolicy

        uniform = PowerCapStrategy(
            PowerBudget(cluster_watts=120.0), policy=UniformCapPolicy()
        )
    """

    kind = "powercap"

    def __init__(
        self,
        budget: PowerBudget,
        policy: Optional[CapPolicy] = None,
        config: Optional[CapGovernorConfig] = None,
        inner: Optional[DVSStrategy] = None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        super().__init__()
        self.budget = budget
        self.policy = policy or SlackRedistributionPolicy()
        self.config = config
        self.inner = inner
        #: enables the governor's degraded-mode defenses (see
        #: :class:`~repro.powercap.resilience.ResilienceConfig`); ``None``
        #: keeps the legacy fair-weather control loop
        self.resilience = resilience
        self.governor: Optional[CapGovernor] = None

    @property
    def name(self) -> str:
        label = f"cap@{self.budget.cluster_watts:.0f}W/{self.policy.name}"
        if self.resilience is not None:
            label += "+selfheal"
        if self.inner is not None:
            label += f"+{self.inner.name}"
        return label

    # ------------------------------------------------------------------
    def prepare(self, cluster: Cluster) -> None:
        capped: Dict[int, CappedCpuFreq] = {
            node.node_id: CappedCpuFreq(node, cluster.calibration)
            for node in cluster.nodes
        }
        self._cpufreqs = capped
        if self.inner is not None:
            # Route the inner strategy through the capped setters (per-
            # instance override of the factory hook), then let it run its
            # own prepare: daemons and initial speeds land pre-clamped.
            self.inner._make_cpufreq = (
                lambda node, calibration: capped[node.node_id]
            )
            self.inner.prepare(cluster)
        self.governor = CapGovernor(
            cluster,
            self.budget,
            policy=self.policy,
            config=self.config,
            cpufreqs=capped,
            resilience=self.resilience,
        )
        self.governor.start(cluster.engine)

    def teardown(self, cluster: Cluster) -> None:
        if self.inner is not None:
            self.inner.teardown(cluster)
        if self.governor is not None:
            self.governor.stop()

    def controller(self, comm) -> DvsController:
        if self.inner is not None:
            return self.inner.controller(comm)
        return super().controller(comm)
