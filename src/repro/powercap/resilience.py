"""Degraded-mode tuning knobs and the governor's repair record.

:class:`ResilienceConfig` turns on the hardened control path in
:class:`~repro.powercap.governor.CapGovernor` (pass ``resilience=None``
— the default — for the legacy fair-weather governor, which is also the
un-hardened baseline the chaos experiment compares against).  Every
defensive action the hardened governor takes is appended to its
``repair_log`` as a :class:`RepairEvent`, so recovery behaviour is as
inspectable as compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.validation import check_positive

__all__ = ["ResilienceConfig", "RepairEvent"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Hardened-governor behaviour, in units of control windows.

    The defaults assume the governor interval is the fastest clock the
    control plane has: one window of missing telemetry is tolerated by
    carrying the last sample forward, two consecutive dark windows
    trigger the worst-case fallback, and a node that is both dark and
    drawing (near) nothing for ``dead_windows`` windows is declared
    crashed — its budget share is redistributed to the survivors until
    it rejoins.
    """

    #: consecutive dark windows before a still-drawing node is treated
    #: as *stale*: it is budgeted at worst case (fully active at its
    #: ceiling) and the whole allocation falls back to the uniform
    #: policy until telemetry returns
    stale_windows: int = 2
    #: consecutive dark windows at ≤ ``dead_watts`` before a node is
    #: declared crashed (watchdog)
    dead_windows: int = 2
    #: PDU reading (watts) below which a dark node counts as unpowered
    dead_watts: float = 0.5
    #: bounded retry budget for re-applying a cap a node refused
    max_reapply_attempts: int = 5
    #: backoff base: retry ``k`` waits ``base × 2^(k-1)`` windows
    backoff_base_windows: int = 1
    #: re-admit a restarted node at the ladder floor for one window
    #: (defeats the reboot-at-max-clock hazard) before normal allocation
    rejoin_at_floor: bool = True

    def __post_init__(self) -> None:
        check_positive("stale_windows", self.stale_windows)
        check_positive("dead_windows", self.dead_windows)
        check_positive("dead_watts", self.dead_watts)
        check_positive("max_reapply_attempts", self.max_reapply_attempts)
        check_positive("backoff_base_windows", self.backoff_base_windows)


@dataclass(frozen=True)
class RepairEvent:
    """One defensive action taken by the hardened governor."""

    time: float
    node_id: int
    #: "declared-dead" | "rejoined" | "stale-fallback" | "reapply" |
    #: "unstuck" | "gave-up"
    action: str
    detail: str = ""


@dataclass
class StuckState:
    """Per-node bookkeeping for the stuck-frequency re-apply loop."""

    target: float  #: ceiling (Hz) the node refuses to honour
    attempts: int = 0
    windows: int = 0  #: windows since the stuck condition was detected
    next_retry: int = 1  #: ``windows`` value at which to retry next
    gave_up: bool = False

    @property
    def exhausted(self) -> bool:
        return self.gave_up


def describe_mhz(frequency_hz: Optional[float]) -> str:
    """Human label for repair-log details."""
    if frequency_hz is None:
        return "?"
    return f"{frequency_hz / 1e6:.0f}MHz"
