"""The power-budget specification a cap governor enforces.

A :class:`PowerBudget` is the cluster operator's contract: keep the whole
cluster's average power under ``cluster_watts``, never force a node below
``node_floor_hz`` or allow it above ``node_ceiling_hz``, and treat a
windowed average within ``tolerance`` of the cap as compliant (real
enforcement — RAPL, PDU-level capping — is specified the same way:
a setpoint plus a guard band, not an instantaneous hard limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hardware.dvfs import DVFSTable, OperatingPoint
from repro.util.validation import check_fraction, check_positive

__all__ = ["PowerBudget"]


@dataclass(frozen=True)
class PowerBudget:
    """A cluster-wide power cap with per-node frequency bounds.

    Attributes
    ----------
    cluster_watts:
        The global budget: target ceiling for windowed average cluster
        power.
    tolerance:
        Fractional guard band on enforcement: a window averaging up to
        ``cluster_watts * (1 + tolerance)`` still counts as compliant.
    node_floor_hz:
        No node is ever forced below this frequency (default: the
        ladder's slowest point).  Operators use the floor to bound the
        worst-case slowdown of any single rank.
    node_ceiling_hz:
        No node is ever allocated above this frequency (default: the
        ladder's fastest point).

    Examples
    --------
    A 130 W rack budget with the default 5 % guard band::

        from repro.powercap import PowerBudget

        budget = PowerBudget(cluster_watts=130.0)
        assert budget.limit_watts == 130.0 * 1.05
        assert budget.complies(134.0)       # inside the guard band
        assert not budget.complies(140.0)   # violation

    Bounding the worst-case per-rank slowdown by forbidding the 600 MHz
    point::

        from repro.util.units import MHZ

        budget = PowerBudget(cluster_watts=130.0, node_floor_hz=800 * MHZ)
        # budget.resolve_bounds(table) snaps (floor, ceiling) to ladder
        # points before the governor ever allocates.
    """

    cluster_watts: float
    tolerance: float = 0.05
    node_floor_hz: Optional[float] = None
    node_ceiling_hz: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive("cluster_watts", self.cluster_watts)
        check_fraction("tolerance", self.tolerance)
        if self.node_floor_hz is not None:
            check_positive("node_floor_hz", self.node_floor_hz)
        if self.node_ceiling_hz is not None:
            check_positive("node_ceiling_hz", self.node_ceiling_hz)
        if (
            self.node_floor_hz is not None
            and self.node_ceiling_hz is not None
            and self.node_floor_hz > self.node_ceiling_hz
        ):
            raise ValueError(
                f"node_floor_hz={self.node_floor_hz} exceeds "
                f"node_ceiling_hz={self.node_ceiling_hz}"
            )

    # ------------------------------------------------------------------
    @property
    def limit_watts(self) -> float:
        """The compliance boundary: cap plus the guard band."""
        return self.cluster_watts * (1.0 + self.tolerance)

    def complies(self, average_watts: float) -> bool:
        """Whether one window's average power is within the budget."""
        return average_watts <= self.limit_watts

    def resolve_bounds(
        self, table: DVFSTable
    ) -> Tuple[OperatingPoint, OperatingPoint]:
        """Snap the per-node bounds to ladder points: (floor, ceiling)."""
        floor = (
            table.slowest
            if self.node_floor_hz is None
            else table.closest(self.node_floor_hz)
        )
        ceiling = (
            table.fastest
            if self.node_ceiling_hz is None
            else table.closest(self.node_ceiling_hz)
        )
        if floor.frequency > ceiling.frequency:
            raise ValueError(
                f"budget bounds resolve to floor {floor} above ceiling "
                f"{ceiling} on this ladder"
            )
        return floor, ceiling
