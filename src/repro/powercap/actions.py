"""The governor's action taxonomy: what a control window may decide.

The original governor had exactly one verb — *set this node's frequency
ceiling* — hard-wired into :class:`~repro.powercap.governor.CapGovernor`
as direct :class:`~repro.dvs.capped.CappedCpuFreq` calls.  Krzywda et
al. (PAPERS.md) show that under a power budget the winning knob flips
with load and budget depth: sometimes DVFS, sometimes core allocation,
sometimes switching whole nodes off.  This module is the frozen
vocabulary that lets one control loop speak all three:

* :class:`SetFreqCeiling` — the DVFS knob (the paper's own);
* :class:`GateNode` / :class:`WakeNode` — the horizontal knob: an
  orderly drain/wake built on the crash/rejoin machinery of
  :mod:`repro.faults` (a gated node idles at platform suspend power and
  wakes with a boot-latency penalty);
* :class:`SetCoreAllocation` — the vertical knob: scale the share of a
  node's cores that stay powered, rescaling both ``run_cycles``
  throughput and the CPU's dynamic power.

A :class:`GovernorPlan` is one window's decision: an ordered tuple of
actions plus the policy's power prediction.  Plans are *data* —
emitting one performs nothing; the governor routes each action to the
matching :mod:`~repro.powercap.actuators` entry.  Legacy
:class:`~repro.powercap.policy.CapPolicy` allocations lower to
pure-DVFS plans via :meth:`GovernorPlan.from_allocation`, and doing so
is bit-identical to the pre-refactor direct-call path (asserted in
``tests/powercap/test_bit_identity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.powercap.policy import CapAllocation

__all__ = [
    "Action",
    "GateNode",
    "GovernorPlan",
    "SetCoreAllocation",
    "SetFreqCeiling",
    "WakeNode",
]


@dataclass(frozen=True)
class SetFreqCeiling:
    """Move one node's frequency ceiling (and drive the clock to it).

    ``drive_down=False`` is the ordinary allocation move: lower ceilings
    clamp immediately (the ceiling setter forces the switch), higher
    ones are claimed with an explicit daemon-context speed-up so plain
    capped runs (no inner controller) use the new headroom at once.
    ``drive_down=True`` is the containment move used on rejoin/reboot:
    force the *actual* clock down to the ceiling even when the bookkept
    ceiling did not change (a rebooted node comes up at full clock).
    """

    node_id: int
    frequency: float  #: ceiling in Hz (a legal ladder point)
    drive_down: bool = False


@dataclass(frozen=True)
class GateNode:
    """Power-gate one node: orderly drain to platform suspend power.

    The gated node stops executing (in-flight work parks, exactly as
    under a :class:`~repro.faults.spec.NodeCrash`) but, unlike a crash,
    keeps drawing the platform's suspend power
    (:attr:`~repro.hardware.power.NodePowerModel.gated_power`) — wake
    state must be retained.  The node reports no telemetry while gated.
    """

    node_id: int


@dataclass(frozen=True)
class WakeNode:
    """Wake a gated node after the actuator's boot-latency penalty.

    ``boot_frequency`` is the clock the node comes up at; ``None``
    means the ladder's floor (the governor's containment default — a
    woken node must not blow the budget in its first window).
    """

    node_id: int
    boot_frequency: Optional[float] = None


@dataclass(frozen=True)
class SetCoreAllocation:
    """Set the powered-core fraction of one node (the vertical knob).

    ``fraction`` ∈ (0, 1]: both ``run_cycles`` throughput and the CPU's
    dynamic power scale by it.  1.0 is the exact no-op (all cores
    powered — the float identity ``f × 1.0 == f`` keeps full-core runs
    bit-identical to pre-refactor trajectories).
    """

    node_id: int
    fraction: float


#: Everything a plan may contain — the frozen action vocabulary.
Action = Union[SetFreqCeiling, GateNode, WakeNode, SetCoreAllocation]


@dataclass(frozen=True)
class GovernorPlan:
    """One control window's decision: ordered actions + the prediction.

    ``predicted_watts``/``feasible`` carry the policy's estimate for the
    cluster total after the plan applies, exactly as
    :class:`~repro.powercap.policy.CapAllocation` does for the pure-DVFS
    case (``feasible=False`` = the target cannot be met with the knobs
    the policy was allowed to use).
    """

    actions: Tuple[Action, ...]
    predicted_watts: float
    feasible: bool

    @classmethod
    def from_allocation(cls, allocation: CapAllocation) -> "GovernorPlan":
        """Lower a legacy DVFS allocation to a pure-ceiling plan.

        Actions are emitted in the allocation dict's iteration order, so
        applying the plan performs exactly the operations (in exactly
        the order) the pre-refactor governor performed.
        """
        return cls(
            actions=tuple(
                SetFreqCeiling(node_id=node_id, frequency=frequency)
                for node_id, frequency in allocation.frequencies.items()
            ),
            predicted_watts=allocation.predicted_watts,
            feasible=allocation.feasible,
        )

    @property
    def frequencies(self) -> Dict[int, float]:
        """node id → ceiling for every DVFS action in the plan."""
        return {
            a.node_id: a.frequency
            for a in self.actions
            if isinstance(a, SetFreqCeiling)
        }

    @property
    def gated_node_ids(self) -> Tuple[int, ...]:
        return tuple(
            a.node_id for a in self.actions if isinstance(a, GateNode)
        )

    @property
    def woken_node_ids(self) -> Tuple[int, ...]:
        return tuple(
            a.node_id for a in self.actions if isinstance(a, WakeNode)
        )
