"""Per-node telemetry windows and the governor's power prediction model.

The governor periodically needs, for every node: *how much power did you
draw over the last window, and how much of it was real computation?*  The
first comes from the node's ground-truth
:class:`~repro.hardware.timeline.PowerTimeline`; in a deployment it would
come from RAPL / PDU readings, which report the same windowed average.
The second cannot come from ``/proc/stat`` alone — MPICH-1 busy-waiting
pins the busy counter at 100 % on communication-bound ranks (the paper's
Fig-3 artifact) — so the telemetry layer cross-references the two: given
the window's busy fraction *and* its measured watts, it solves the node
power model for the **effective activity factor** of the busy time.  A
rank that was truly computing shows α ≈ 1.0; a rank that spun in the
progress engine shows α ≈ 0.4 and a DRAM-stalled one α ≈ 0.45, even
though all three look identically "100 % busy" to the kernel.  That
inferred factor is the slack signal the redistribution policy ranks
nodes by, and it makes the per-frequency power prediction
self-calibrating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.activity import CpuActivity
from repro.hardware.cluster import Cluster
from repro.hardware.dvfs import DVFSTable, OperatingPoint
from repro.hardware.power import NodePowerModel
from repro.hardware.procstat import ProcStatSample
from repro.hardware.timeline import EnergyCursor

__all__ = [
    "NodeWindowSample",
    "ClusterTelemetry",
    "infer_busy_alpha",
    "predict_node_power",
    "demand_power",
    "spin_floor_power",
    "compute_intensity",
]

#: Busy fraction below which the activity factor is unidentifiable from
#: power (almost no busy time to attribute the draw to).
_MIN_BUSY_FOR_INFERENCE = 0.02


@dataclass(frozen=True)
class NodeWindowSample:
    """One node's telemetry over one governor window."""

    node_id: int
    t0: float
    t1: float
    avg_watts: float  #: windowed average node power
    busy_fraction: float  #: /proc/stat busy share of the window
    frequency: float  #: operating frequency (Hz) at the window's end

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class ClusterTelemetry:
    """Rolling per-node window sampler against a live cluster.

    Each :meth:`sample` call closes every node's open accounting segment
    (exactly as the cpuspeed daemon must before reading ``/proc/stat``),
    then returns one :class:`NodeWindowSample` per node covering the
    interval since the previous call (or since construction).
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._prev_time = cluster.engine.now
        self._prev_stat: Dict[int, ProcStatSample] = {
            node.node_id: node.procstat.snapshot() for node in cluster.nodes
        }
        # Live per-node integrators.  The governor is a *closed-loop*
        # consumer: the watts it reads feed back into frequency
        # decisions, so the window integral must be reproducible
        # bit-for-bit run over run.  The cursor's per-window increment is
        # exactly the scalar window walk (see EnergyCursor.advance) —
        # unlike a frozen-view prefix-sum difference, whose last-ulp
        # rounding depends on the whole trace before the window and
        # would perturb control trajectories.  Batch/offline consumers
        # (profiles, attribution, figures) use the frozen series instead.
        self._meters: Dict[int, EnergyCursor] = {
            node.node_id: node.timeline.cursor(cluster.engine.now)
            for node in cluster.nodes
        }

    @property
    def window_start(self) -> float:
        """Start time of the window the next :meth:`sample` will close."""
        return self._prev_time

    def sample(self) -> List[NodeWindowSample]:
        """Close the current window and return one sample per *visible*
        node.

        A zero-length window (the governor fired twice at the same sim
        time) returns the empty list — there is nothing to average, and
        NaN-from-0/0 must never reach the policies.

        Nodes whose monitoring agent is down (``telemetry_dark``, or
        crashed outright) report **no sample** — exactly the hole a real
        collector leaves — and consumers must cope with missing node
        ids.  A node with an active power-noise fault reports a
        perturbed ``avg_watts``.
        """
        now = self.cluster.engine.now
        t0 = self._prev_time
        if now <= t0:
            return []
        for node in self.cluster.nodes:
            node.cpu.finalize()
        samples = []
        for node in self.cluster.nodes:
            stat = node.procstat.snapshot()
            busy = stat.utilization_since(self._prev_stat[node.node_id])
            self._prev_stat[node.node_id] = stat
            # Advance every node's meter (dark nodes too — their windows
            # must stay aligned for when visibility returns).
            joules = self._meters[node.node_id].advance(now)
            if not node.telemetry_visible:
                continue
            avg_watts = joules / (now - t0)
            noise = node.faults.power_noise
            if noise is not None:
                avg_watts = noise(avg_watts, now)
            samples.append(
                NodeWindowSample(
                    node_id=node.node_id,
                    t0=t0,
                    t1=now,
                    avg_watts=avg_watts,
                    busy_fraction=busy,
                    frequency=node.cpu.frequency,
                )
            )
        self._prev_time = now
        return samples


# ---------------------------------------------------------------------------
# the governor's node power model
# ---------------------------------------------------------------------------
#: Memoised (busy-capacity, idle) watts per (model, table, point) triple.
#: All three are immutable, so the cached floats are pure memoisations of
#: the exact expressions below; the stored strong references pin the ids,
#: so an id can never be reused by a different object while cached.
#: Both memo dicts reset wholesale at this size — stale hits stay
#: impossible (a cleared cache drops the pins *and* the entries) while
#: long processes (the test suite) stay bounded.
_MEMO_LIMIT = 65536

_POINT_WATTS: Dict[tuple, tuple] = {}


def _point_watts(model: NodePowerModel, table: DVFSTable, point) -> tuple:
    key = (id(model), id(table), id(point))
    hit = _POINT_WATTS.get(key)
    if hit is not None:
        return hit
    busy = model.cpu.max_power * table.relative_fv2(point)
    idle = (
        model.cpu.factors[CpuActivity.IDLE]
        * model.cpu.max_power
        * table.relative_v2(point)
    )
    if len(_POINT_WATTS) >= _MEMO_LIMIT:
        _POINT_WATTS.clear()
    entry = (busy, idle, model, table, point)
    _POINT_WATTS[key] = entry
    return entry


def _busy_capacity(model: NodePowerModel, table: DVFSTable, point) -> float:
    """Fully-active CPU draw (watts) at ``point`` — the α=1 reference."""
    return _point_watts(model, table, point)[0]


def _idle_watts(model: NodePowerModel, table: DVFSTable, point) -> float:
    """Halted-CPU draw (watts) at ``point`` (leakage tracks V²)."""
    return _point_watts(model, table, point)[1]


#: Memoised α per (model, table, sample) — the allocator's greedy loop
#: re-evaluates the same window sample at every candidate ladder point,
#: and α depends only on the sample.  Same strong-reference id-pinning
#: scheme as :data:`_POINT_WATTS`.
_ALPHA_MEMO: Dict[tuple, tuple] = {}


def infer_busy_alpha(
    model: NodePowerModel, table: DVFSTable, sample: NodeWindowSample
) -> float:
    """Effective activity factor of the sample's busy time, in [0, 1].

    Solves ``avg = base + busy·α·P_active(f) + (1−busy)·P_idle(f)`` for α.
    Windows with almost no busy time return the conservative 1.0 (if the
    node *does* get busy next window, assume full draw).
    """
    key = (id(model), id(table), id(sample))
    hit = _ALPHA_MEMO.get(key)
    if hit is not None:
        return hit[0]
    if sample.busy_fraction < _MIN_BUSY_FOR_INFERENCE:
        alpha = 1.0
    else:
        point = table.point_for(sample.frequency)
        cpu_watts = sample.avg_watts - model.base_power
        residual = cpu_watts - (1.0 - sample.busy_fraction) * _idle_watts(
            model, table, point
        )
        alpha = residual / (
            sample.busy_fraction * _busy_capacity(model, table, point)
        )
        alpha = max(0.0, min(1.0, alpha))
    if len(_ALPHA_MEMO) >= _MEMO_LIMIT:
        _ALPHA_MEMO.clear()
    _ALPHA_MEMO[key] = (alpha, model, table, sample)
    return alpha


def predict_node_power(
    model: NodePowerModel,
    table: DVFSTable,
    sample: NodeWindowSample,
    point: OperatingPoint,
) -> float:
    """Predicted average node power (watts) at ``point``.

    Assumes the measured window's activity mix carries over: the busy
    share keeps drawing at its inferred effective factor, the idle share
    stays halted.  The governor re-samples every window, so prediction
    error from the mix shifting (frequency-independent stalls dilate at
    lower clocks) self-corrects within one control period; the budget's
    tolerance plus the governor's safety margin absorb the transient.
    """
    alpha = infer_busy_alpha(model, table, sample)
    return (
        model.base_power
        + sample.busy_fraction * alpha * _busy_capacity(model, table, point)
        + (1.0 - sample.busy_fraction) * _idle_watts(model, table, point)
    )


def demand_power(
    model: NodePowerModel, table: DVFSTable, demand: float, point: OperatingPoint
) -> float:
    """Node draw (watts) if a ``demand`` share of a window is fully active.

    ``demand`` is a compute intensity in [0, 1] (see
    :func:`compute_intensity`); the rest of the window idles.  Monotone
    in both ``demand`` and the operating point, which is what allocation
    loops need from a pessimistic bound.
    """
    return (
        model.base_power
        + demand * _busy_capacity(model, table, point)
        + (1.0 - demand) * _idle_watts(model, table, point)
    )


def spin_floor_power(
    model: NodePowerModel, table: DVFSTable, point: OperatingPoint
) -> float:
    """Node draw (watts) if it wakes into a full busy-wait at ``point``.

    The pessimistic floor for capacity planning: a rank that sampled as
    blocked/idle can start spinning in the progress engine within one
    control window (the paper's Fig-3 behaviour is the *default* for
    MPICH-1 waits), jumping from near-idle to α≈0.4 at 100 % busy with
    no warning the governor could react to in time.  Allocators that
    budget such a node below this level are betting against the very
    artifact this codebase reproduces.
    """
    return model.base_power + model.cpu.factors[
        CpuActivity.SPIN
    ] * model.cpu.max_power * table.relative_fv2(point)


def compute_intensity(
    model: NodePowerModel, table: DVFSTable, sample: NodeWindowSample
) -> float:
    """How compute-bound the node's window was, in [0, 1].

    ``busy_fraction × α_effective`` — the fraction of a fully-active
    CPU's draw the node actually used.  ≈1 for retirement-bound ranks;
    ≈0.4 for ranks that spent the window spinning on messages (slack),
    despite ``/proc/stat`` reporting both as 100 % busy.  Lower values
    mean slowing the node costs less performance, so the redistribution
    policy takes frequency from low-intensity nodes first.
    """
    return sample.busy_fraction * infer_busy_alpha(model, table, sample)
