"""The elastic multi-knob policy: choose DVFS, cores, or node gating.

Krzywda et al. (PAPERS.md) measured that under a power budget the
winning knob flips with load and budget depth: shallow cuts are best
served by DVFS (smooth, fast, no capacity loss); deeper cuts by core
allocation (dynamic power falls with the powered-core share while the
platform stays up); and cuts below the cluster's all-floors draw can
*only* be met by switching whole nodes to suspend power — the DVFS
ladder bottoms out at ``n × (base + floor)`` watts and no frequency
choice goes lower.

:class:`ElasticPolicy` encodes that escalation as a deterministic
per-window procedure over the same telemetry the legacy policies see:

1. **DVFS first** — delegate to the ``inner``
   :class:`~repro.powercap.policy.CapPolicy` (slack redistribution by
   default) against the target minus the known draw of already-gated
   nodes.  When the inner allocation is feasible, the plan is pure DVFS
   — with every knob at its neutral position this degenerates *exactly*
   (bit-for-bit) to the legacy policy, the property the hypothesis
   suite pins.
2. **Then cores** — while infeasible, step the powered-core fraction of
   the slackest node down one notch (:attr:`ElasticPolicy.CORE_STEPS`)
   and re-allocate; dynamic CPU power scales with the fraction, so each
   notch buys watts the ladder alone cannot.
3. **Then gate** — still infeasible, power-gate the slackest
   non-protected node (at most one per window: an orderly drain, not a
   panic).  Its draw drops to the platform's suspend power and its
   budget share redistributes to the survivors.
4. **Recovery** — once feasible with hysteresis headroom
   (``wake_fraction``), restore in reverse order: cores step back up
   first, then gated nodes wake (at the ladder floor, after the
   actuator's boot latency).

Every choice breaks ties by node id, and the policy holds no hidden
state beyond what the governor already tracks — a window's plan is a
pure function of its :class:`PlanContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hardware.dvfs import DVFSTable, OperatingPoint

from repro.powercap.actions import (
    Action,
    GateNode,
    GovernorPlan,
    SetCoreAllocation,
    SetFreqCeiling,
    WakeNode,
)
from repro.powercap.policy import (
    CapAllocation,
    CapPolicy,
    PowerPredictor,
    SlackRedistributionPolicy,
)
from repro.powercap.telemetry import NodeWindowSample

__all__ = ["ELASTIC_KNOBS", "ElasticPolicy", "PlanContext"]

#: The knobs an :class:`ElasticPolicy` may be allowed to use, in the
#: escalation order the policy applies them.
ELASTIC_KNOBS = ("dvfs", "cores", "gate")


@dataclass(frozen=True)
class PlanContext:
    """Everything one window's plan is a function of.

    The governor assembles this from its telemetry window and gating
    bookkeeping; tests construct it directly to drive the policy as a
    pure function.
    """

    samples: Tuple[NodeWindowSample, ...]  #: visible (non-gated) nodes
    target_watts: float  #: the governor's derated allocation target
    table: DVFSTable
    floor: OperatingPoint
    ceiling: OperatingPoint
    predict: PowerPredictor  #: full-core node power at a ladder point
    base_power: float  #: frequency-independent node watts (for scaling)
    gated_draw_watts: float  #: suspend draw of one gated node
    #: worst-case draw of a just-woken node (fully active at the floor)
    wake_cost_watts: float
    gated: FrozenSet[int] = frozenset()  #: node ids currently gated
    waking: FrozenSet[int] = frozenset()  #: gated ids with boot in flight
    #: node id → current powered-core fraction (missing = 1.0)
    core_allocation: Dict[int, float] = field(default_factory=dict)
    #: node ids the policy must never gate (e.g. one server per tier)
    protected: FrozenSet[int] = frozenset()


class ElasticPolicy:
    """Multi-knob allocation: DVFS → core allocation → node gating.

    Parameters
    ----------
    knobs:
        Subset of :data:`ELASTIC_KNOBS` the policy may use.  ``"dvfs"``
        is always required — the other knobs refine it.  A pure
        ``("dvfs",)`` policy degenerates bit-exactly to ``inner``.
    inner:
        The DVFS allocator (default
        :class:`~repro.powercap.policy.SlackRedistributionPolicy`).
    wake_fraction:
        Hysteresis: restore a knob (core step up, node wake) only while
        the predicted total *including* the restore cost stays under
        ``wake_fraction × target`` — prevents gate/wake flapping at the
        budget boundary.
    boot_frequency:
        Clock a woken node comes back at (``None`` = the ladder floor).
    """

    name = "elastic"

    #: powered-core fractions the vertical knob walks, full first
    CORE_STEPS: Tuple[float, ...] = (1.0, 0.75, 0.5, 0.25)

    def __init__(
        self,
        knobs: Sequence[str] = ELASTIC_KNOBS,
        inner: Optional[CapPolicy] = None,
        intensity_of: Optional[Callable[[NodeWindowSample], float]] = None,
        wake_fraction: float = 0.7,
        boot_frequency: Optional[float] = None,
    ):
        self.knobs = tuple(knobs)
        unknown = [k for k in self.knobs if k not in ELASTIC_KNOBS]
        if unknown:
            raise ValueError(
                f"unknown knobs {unknown}; pick from {ELASTIC_KNOBS}"
            )
        if "dvfs" not in self.knobs:
            raise ValueError("the 'dvfs' knob is required (it is the base)")
        if not 0.0 < wake_fraction <= 1.0:
            raise ValueError(
                f"wake_fraction must be in (0, 1], got {wake_fraction}"
            )
        self.inner = inner if inner is not None else SlackRedistributionPolicy()
        self._intensity_of = intensity_of
        if (
            isinstance(self.inner, SlackRedistributionPolicy)
            and self.inner._intensity_of is None
            and intensity_of is not None
        ):
            # Standalone use (no governor to wire the metric): share ours.
            self.inner._intensity_of = intensity_of
        self.wake_fraction = wake_fraction
        self.boot_frequency = boot_frequency
        #: set before planning by the embedding layer (e.g. the serving
        #: policy protects one node per tier); frozen during a window
        self.protected: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    def _intensity(self, sample: NodeWindowSample) -> float:
        if self._intensity_of is None:
            raise RuntimeError(
                "ElasticPolicy needs an intensity metric; the CapGovernor "
                "wires one in automatically"
            )
        return self._intensity_of(sample)

    def plan(self, ctx: PlanContext) -> GovernorPlan:
        """One window's decision (deterministic, stateless)."""
        samples: List[NodeWindowSample] = list(ctx.samples)
        planned_cores: Dict[int, float] = {
            s.node_id: ctx.core_allocation.get(s.node_id, 1.0)
            for s in samples
        }
        reserve = ctx.gated_draw_watts * len(ctx.gated)
        actions: List[Action] = []
        gate_action: Optional[GateNode] = None
        wake_action: Optional[WakeNode] = None

        def scaled_predict(
            sample: NodeWindowSample, point: OperatingPoint
        ) -> float:
            # Dynamic CPU power scales with the powered-core share; the
            # platform base does not.  The 1.0 guard keeps the all-cores
            # case bit-identical to the raw predictor (``base + (w −
            # base)`` is *not* a float identity).
            fraction = planned_cores.get(sample.node_id, 1.0)
            watts = ctx.predict(sample, point)
            if fraction == 1.0:
                return watts
            return ctx.base_power + fraction * (watts - ctx.base_power)

        def allocate() -> CapAllocation:
            target = ctx.target_watts
            if reserve:
                target = target - reserve
            if not samples:
                return CapAllocation(
                    frequencies={},
                    predicted_watts=0.0,
                    feasible=reserve <= ctx.target_watts,
                )
            return self.inner.allocate(
                samples,
                target,
                ctx.table,
                ctx.floor,
                ctx.ceiling,
                scaled_predict,
            )

        allocation = allocate()

        # --- escalate: vertical knob (core allocation) ----------------
        if not allocation.feasible and "cores" in self.knobs:
            steps = list(self.CORE_STEPS)
            for _ in range(len(samples) * max(len(steps) - 1, 0)):
                shrinkable = [
                    s
                    for s in samples
                    if planned_cores[s.node_id] > steps[-1]
                ]
                if not shrinkable:
                    break
                victim = min(
                    shrinkable,
                    key=lambda s: (self._intensity(s), s.node_id),
                )
                current = planned_cores[victim.node_id]
                below = [f for f in steps if f < current]
                planned_cores[victim.node_id] = max(below)
                allocation = allocate()
                if allocation.feasible:
                    break

        # --- escalate: horizontal knob (gate one node per window) -----
        if not allocation.feasible and "gate" in self.knobs:
            gateable = [
                s for s in samples if s.node_id not in ctx.protected
            ]
            if gateable and len(samples) > 1:
                victim = min(
                    gateable,
                    key=lambda s: (self._intensity(s), s.node_id),
                )
                gate_action = GateNode(node_id=victim.node_id)
                planned_cores.pop(victim.node_id, None)
                samples = [s for s in samples if s is not victim]
                reserve += ctx.gated_draw_watts
                allocation = allocate()

        predicted_total = allocation.predicted_watts + reserve
        feasible = allocation.feasible and predicted_total <= ctx.target_watts
        if not allocation.feasible:
            feasible = False

        # --- recover: restore knobs under the hysteresis margin -------
        margin = self.wake_fraction * ctx.target_watts
        if feasible and gate_action is None:
            shrunk = sorted(
                nid for nid, f in planned_cores.items() if f < 1.0
            )
            woken_candidates = sorted(ctx.gated - ctx.waking)
            if shrunk:
                nid = shrunk[0]
                current = planned_cores[nid]
                above = [f for f in self.CORE_STEPS if f > current]
                restored = min(above)
                # Worst-case cost of the restored share: the extra
                # fraction fully active at the node's allocated point.
                extra = (restored - current) * (
                    ctx.wake_cost_watts - ctx.base_power
                )
                if predicted_total + extra <= margin:
                    planned_cores[nid] = restored
                    allocation = allocate()
                    predicted_total = allocation.predicted_watts + reserve
                    feasible = (
                        allocation.feasible
                        and predicted_total <= ctx.target_watts
                    )
            elif woken_candidates and "gate" in self.knobs:
                cost = ctx.wake_cost_watts - ctx.gated_draw_watts
                if predicted_total + cost <= margin:
                    wake_action = WakeNode(
                        node_id=woken_candidates[0],
                        boot_frequency=self.boot_frequency,
                    )

        # --- assemble the plan (cores, gate, ceilings, wake) ----------
        for nid in sorted(planned_cores):
            if planned_cores[nid] != ctx.core_allocation.get(nid, 1.0):
                actions.append(
                    SetCoreAllocation(node_id=nid, fraction=planned_cores[nid])
                )
        if gate_action is not None:
            actions.append(gate_action)
        for node_id, frequency in allocation.frequencies.items():
            actions.append(
                SetFreqCeiling(node_id=node_id, frequency=frequency)
            )
        if wake_action is not None:
            actions.append(wake_action)
        return GovernorPlan(
            actions=tuple(actions),
            predicted_watts=predicted_total,
            feasible=feasible,
        )
