"""Actuators: the hands of the governor's control plane.

An :class:`Actuator` executes one kind of
:mod:`~repro.powercap.actions` against live hardware.  The governor
never touches :class:`~repro.dvs.capped.CappedCpuFreq` (or node power
switches, or core gates) directly any more — it emits a
:class:`~repro.powercap.actions.GovernorPlan` and routes each action to
the actuator registered for its type.  Splitting decision from
execution is what lets one control loop drive three knobs:

* :class:`DvfsActuator` — frequency ceilings.  Its ``apply`` performs
  *exactly* the operations (in exactly the order) the pre-refactor
  governor inlined, so legacy control trajectories are bit-identical
  (``tests/powercap/test_bit_identity.py``).
* :class:`NodeGateActuator` — orderly drain/wake built on the
  crash/rejoin machinery of :mod:`repro.hardware.cpu`: gating suspends
  the node at platform suspend power; waking pays a boot-latency
  penalty before the node rejoins at the requested (default: floor)
  clock.
* :class:`CoreAllocationActuator` — powered-core fractions.

``default_actuators`` builds the standard set for a cluster; passing a
custom list to :class:`~repro.powercap.governor.CapGovernor` swaps in
alternative hardware bindings (the tests use this to record applied
actions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple, Type, runtime_checkable

from repro.dvs.capped import CappedCpuFreq
from repro.hardware.activity import CpuActivity
from repro.hardware.cluster import Cluster

from repro.powercap.actions import (
    Action,
    GateNode,
    GovernorPlan,
    SetCoreAllocation,
    SetFreqCeiling,
    WakeNode,
)

__all__ = [
    "Actuator",
    "CoreAllocationActuator",
    "DvfsActuator",
    "NodeGateActuator",
    "default_actuators",
    "dispatch_plan",
]


@runtime_checkable
class Actuator(Protocol):
    """Structural type: executes the action kinds it declares.

    ``kinds`` lists the action classes this actuator owns; ``apply``
    executes one instance of any of them.  Actuators run in governor
    (daemon) context — ordinary Python calls, never inside a simulated
    process of the node they actuate.
    """

    @property
    def kinds(self) -> Tuple[Type, ...]: ...

    def apply(self, action: Action) -> None: ...


class DvfsActuator:
    """Frequency-ceiling execution through :class:`CappedCpuFreq`.

    ``pending_target`` is the governor's believed-applied bookkeeping
    dict (shared by reference): the hardened control path checks next
    window's telemetry against it to catch stuck regulators, so the
    actuator must record every ceiling it installs there.
    """

    kinds = (SetFreqCeiling,)

    def __init__(
        self,
        cpufreqs: Dict[int, CappedCpuFreq],
        pending_target: Dict[int, float],
    ):
        self.cpufreqs = cpufreqs
        self.pending_target = pending_target

    def apply(self, action: SetFreqCeiling) -> None:
        cpufreq = self.cpufreqs[action.node_id]
        frequency = action.frequency
        cpufreq.set_ceiling(frequency)
        if action.drive_down:
            # Containment (rejoin/reboot): force the actual clock down
            # even when the bookkept ceiling did not change —
            # set_ceiling alone no-ops in that case.
            if cpufreq.current_frequency > frequency:
                cpufreq.set_speed_now(frequency)
        else:
            # For plain capped runs there is no inner controller to
            # claim new headroom, so the governor drives the frequency
            # to the ceiling itself; an inner controller's next request
            # simply re-resolves against the new ceiling.
            if cpufreq.current_frequency < frequency:
                cpufreq.set_speed_now(frequency)
        self.pending_target[action.node_id] = frequency


class NodeGateActuator:
    """Orderly node drain/wake (the horizontal knob).

    Gating is a *drain*, not a plug-pull: an idle node suspends on the
    spot; a busy one is marked draining and suspends the moment its CPU
    next returns to idle (hooked on the CPU's accounting callback, so
    in-flight service completes instead of parking behind the gate —
    which would otherwise strand the request until a wake that a tight
    budget may never grant).  Either way the node ends at platform
    suspend power.  Waking spawns a boot process: after
    ``wake_latency_s`` of continued suspend draw the node powers on at
    the requested clock (default: the ladder's floor — the governor's
    containment default); a wake issued while a drain is still pending
    simply cancels the drain.  ``waking`` tracks nodes whose boot is
    still in flight and ``draining`` nodes whose suspend is, so
    policies and the governor's gating books don't double-act on them.
    """

    kinds = (GateNode, WakeNode)

    def __init__(self, cluster: Cluster, wake_latency_s: float = 0.5):
        if wake_latency_s < 0:
            raise ValueError(
                f"wake_latency_s must be >= 0, got {wake_latency_s}"
            )
        self.cluster = cluster
        self.wake_latency_s = wake_latency_s
        #: node ids with a wake in flight (boot latency not yet elapsed)
        self.waking: set = set()
        #: node ids gated while busy, suspending at their next idle
        self.draining: set = set()
        self._drain_hooks: Dict[int, object] = {}
        #: (time, node_id, "gate" | "drain" | "wake" | "booted") audit log
        self.log: List[Tuple[float, int, str]] = []

    def apply(self, action: Action) -> None:
        if isinstance(action, GateNode):
            self._gate(action.node_id)
        else:
            assert isinstance(action, WakeNode)
            self._wake(action.node_id, action.boot_frequency)

    def _gate(self, node_id: int) -> None:
        node = self.cluster.nodes[node_id]
        if not node.cpu.powered or node_id in self.draining:
            return
        node.cpu.enable_power_gating()
        if node.cpu.state == CpuActivity.IDLE:
            node.cpu.suspend()
            self.log.append((self.cluster.engine.now, node_id, "gate"))
            return
        # Busy: drain.  Wrap the CPU's accounting callback so the
        # suspend fires from the state change that returns it to idle.
        self.draining.add(node_id)
        self.log.append((self.cluster.engine.now, node_id, "drain"))
        original = node.cpu._on_change

        def hook() -> None:
            original()
            if node.cpu.powered and node.cpu.state == CpuActivity.IDLE:
                self._cancel_drain(node_id)
                node.cpu.suspend()
                self.log.append((self.cluster.engine.now, node_id, "gate"))

        self._drain_hooks[node_id] = original
        node.cpu._on_change = hook

    def _cancel_drain(self, node_id: int) -> None:
        original = self._drain_hooks.pop(node_id, None)
        if original is not None:
            self.cluster.nodes[node_id].cpu._on_change = original
        self.draining.discard(node_id)

    def _wake(self, node_id: int, boot_frequency: Optional[float]) -> None:
        node = self.cluster.nodes[node_id]
        if node_id in self.draining:
            # Drain still pending: the node never actually suspended, so
            # waking it is just cancelling the drain.
            self._cancel_drain(node_id)
            self.log.append((self.cluster.engine.now, node_id, "wake"))
            return
        if node.cpu.powered or node_id in self.waking:
            return
        point = self.cluster.table.closest(
            boot_frequency
            if boot_frequency is not None
            else self.cluster.table.slowest.frequency
        )
        self.waking.add(node_id)
        self.log.append((self.cluster.engine.now, node_id, "wake"))
        engine = self.cluster.engine

        def boot():
            if self.wake_latency_s > 0:
                yield engine.timeout(self.wake_latency_s)
            node.cpu.power_on(boot_point=point)
            self.waking.discard(node_id)
            self.log.append((engine.now, node_id, "booted"))

        engine.process(boot(), name=f"wake-node{node_id}")


class CoreAllocationActuator:
    """Powered-core fraction execution (the vertical knob)."""

    kinds = (SetCoreAllocation,)

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        #: (time, node_id, fraction) audit log of applied reallocations
        self.log: List[Tuple[float, int, float]] = []

    def apply(self, action: SetCoreAllocation) -> None:
        self.cluster.nodes[action.node_id].cpu.set_core_allocation(
            action.fraction
        )
        self.log.append(
            (self.cluster.engine.now, action.node_id, action.fraction)
        )


def default_actuators(
    cluster: Cluster,
    cpufreqs: Dict[int, CappedCpuFreq],
    pending_target: Dict[int, float],
    wake_latency_s: float = 0.5,
) -> List[Actuator]:
    """The standard actuator set: DVFS + node gating + core allocation."""
    return [
        DvfsActuator(cpufreqs, pending_target),
        NodeGateActuator(cluster, wake_latency_s=wake_latency_s),
        CoreAllocationActuator(cluster),
    ]


def dispatch_plan(
    plan: GovernorPlan, routes: Dict[Type, Actuator]
) -> None:
    """Apply a plan's actions in order through the routing table."""
    for action in plan.actions:
        actuator = routes.get(type(action))
        if actuator is None:
            raise TypeError(
                f"no actuator registered for {type(action).__name__}; "
                f"routes cover {sorted(k.__name__ for k in routes)}"
            )
        actuator.apply(action)
