"""Runtime assertion layer for the cap control loop.

Yu et al. (*Assertion-Based Design Exploration of DVS*, PAPERS.md) argue
that DVS control logic needs runtime monitors: control bugs do not crash,
they silently overdraw.  :class:`InvariantMonitor` is that monitor for
the cap governor — a passive recorder, attached to every governor by
default, that checks each closed window against the invariants the
control loop is supposed to maintain:

* ``window-over-budget`` — the measured cluster average exceeded the
  budget's enforcement limit (``cluster_watts × (1 + tolerance)``);
* ``node-over-ceiling`` — a powered node ended the window running above
  the frequency ceiling the governor believes it applied (a reboot at
  full clock, a stuck regulator);
* ``allocation-over-target`` — the policy claimed feasibility but its
  own predicted total exceeds the allocation target (a policy bug).

Recording is deliberately decoupled from reaction: the hardened governor
*reads* the same symptoms to repair them, the monitor just keeps the
evidence.  Chaos reports count violations before/after the configured
recovery latency from this record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.powercap.budget import PowerBudget

__all__ = ["InvariantViolation", "InvariantMonitor"]

#: relative slack applied to >-comparisons so float dust never flags
_EPSILON = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One recorded invariant breach (a fact, not an exception)."""

    time: float  #: sim time the enclosing window closed
    kind: str  #: one of the ``InvariantMonitor.*`` kind constants
    detail: str
    node_id: Optional[int] = None


class InvariantMonitor:
    """Passive per-window invariant checker for one governor."""

    WINDOW_OVER_BUDGET = "window-over-budget"
    NODE_OVER_CEILING = "node-over-ceiling"
    ALLOCATION_OVER_TARGET = "allocation-over-target"

    def __init__(self, budget: PowerBudget):
        self.budget = budget
        #: every violation observed, in window order
        self.violations: List[InvariantViolation] = []

    # ------------------------------------------------------------------
    def observe_window(
        self,
        window,
        *,
        target_watts: float,
        node_frequencies: Dict[int, float],
        ceilings: Dict[int, float],
        allocated: bool = True,
    ) -> List[InvariantViolation]:
        """Check one closed :class:`~repro.powercap.governor.GovernorWindow`.

        ``node_frequencies`` maps powered nodes to their actual clock at
        the window close; ``ceilings`` maps node ids to the governor's
        applied ceilings.  ``allocated=False`` (the trailing partial
        window) skips the allocation-consistency check, which only makes
        sense when a policy actually produced the window's allocation.
        """
        found: List[InvariantViolation] = []
        limit = self.budget.limit_watts
        if window.cluster_avg_watts > limit * (1.0 + _EPSILON):
            found.append(
                InvariantViolation(
                    time=window.t1,
                    kind=self.WINDOW_OVER_BUDGET,
                    detail=(
                        f"measured {window.cluster_avg_watts:.2f} W over "
                        f"limit {limit:.2f} W"
                    ),
                )
            )
        if (
            allocated
            and window.feasible
            and window.predicted_watts > target_watts * (1.0 + _EPSILON)
        ):
            found.append(
                InvariantViolation(
                    time=window.t1,
                    kind=self.ALLOCATION_OVER_TARGET,
                    detail=(
                        f"policy predicted {window.predicted_watts:.2f} W "
                        f"above target {target_watts:.2f} W yet claimed "
                        "feasible"
                    ),
                )
            )
        for node_id in sorted(node_frequencies):
            ceiling = ceilings.get(node_id)
            if ceiling is None:
                continue
            actual = node_frequencies[node_id]
            if actual > ceiling * (1.0 + _EPSILON):
                found.append(
                    InvariantViolation(
                        time=window.t1,
                        kind=self.NODE_OVER_CEILING,
                        detail=(
                            f"running {actual / 1e6:.0f} MHz above ceiling "
                            f"{ceiling / 1e6:.0f} MHz"
                        ),
                        node_id=node_id,
                    )
                )
        self.violations.extend(found)
        return found

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.violations)

    def count_of(self, kind: str) -> int:
        return sum(1 for v in self.violations if v.kind == kind)

    def after(self, time: float) -> Tuple[InvariantViolation, ...]:
        """Violations recorded strictly after ``time`` (recovery checks)."""
        return tuple(v for v in self.violations if v.time > time)
