"""Cluster power-budget scheduling (extension beyond the paper).

The paper optimises weighted ED²P per application; this subsystem solves
the complementary cluster-operator problem — *keep this rack under N
watts while losing as little performance as possible* — by closing a
periodic control loop over the whole stack: per-node power telemetry
(timelines + ``/proc/stat``), slack inference through the calibrated
power model, and per-node frequency redistribution through cap-clamped
CPUFreq setters.  See Medhat et al., *Power Redistribution for
Optimizing Performance in MPI Clusters*, and Krzywda et al.,
*Power-Performance Tradeoffs in Data Center Servers* (PAPERS.md).

Layers: :mod:`~repro.powercap.budget` (the spec),
:mod:`~repro.powercap.telemetry` (windowed sampling + prediction),
:mod:`~repro.powercap.policy` (uniform baseline vs slack-aware
redistribution), :mod:`~repro.powercap.actions` /
:mod:`~repro.powercap.actuators` (the typed action plans and the hands
that execute them), :mod:`~repro.powercap.elastic` (the multi-knob
policy: DVFS + core allocation + node gating),
:mod:`~repro.powercap.governor` (the control loop), and
:mod:`~repro.powercap.strategy` (composition with the paper's DVS
strategies and the measurement pipeline).
"""

from repro.powercap.actions import (
    Action,
    GateNode,
    GovernorPlan,
    SetCoreAllocation,
    SetFreqCeiling,
    WakeNode,
)
from repro.powercap.actuators import (
    Actuator,
    CoreAllocationActuator,
    DvfsActuator,
    NodeGateActuator,
    default_actuators,
    dispatch_plan,
)
from repro.powercap.budget import PowerBudget
from repro.powercap.elastic import ELASTIC_KNOBS, ElasticPolicy, PlanContext
from repro.powercap.governor import CapGovernor, CapGovernorConfig, GovernorWindow
from repro.powercap.monitor import InvariantMonitor, InvariantViolation
from repro.powercap.resilience import RepairEvent, ResilienceConfig
from repro.powercap.policy import (
    CapAllocation,
    CapPolicy,
    SlackRedistributionPolicy,
    UniformCapPolicy,
)
from repro.powercap.strategy import PowerCapStrategy
from repro.powercap.telemetry import (
    ClusterTelemetry,
    NodeWindowSample,
    compute_intensity,
    infer_busy_alpha,
    predict_node_power,
)

__all__ = [
    "Action",
    "Actuator",
    "CoreAllocationActuator",
    "DvfsActuator",
    "ELASTIC_KNOBS",
    "ElasticPolicy",
    "GateNode",
    "GovernorPlan",
    "NodeGateActuator",
    "PlanContext",
    "SetCoreAllocation",
    "SetFreqCeiling",
    "WakeNode",
    "default_actuators",
    "dispatch_plan",
    "PowerBudget",
    "CapGovernor",
    "CapGovernorConfig",
    "GovernorWindow",
    "InvariantMonitor",
    "InvariantViolation",
    "RepairEvent",
    "ResilienceConfig",
    "CapAllocation",
    "CapPolicy",
    "UniformCapPolicy",
    "SlackRedistributionPolicy",
    "PowerCapStrategy",
    "ClusterTelemetry",
    "NodeWindowSample",
    "compute_intensity",
    "infer_busy_alpha",
    "predict_node_power",
]
