"""Frequency-allocation policies for enforcing a cluster power budget.

Given one telemetry window (per-node average watts + inferred activity)
and a target cluster power, a policy decides every node's next frequency
ceiling.  Two policies bracket the design space:

* :class:`UniformCapPolicy` — the naive operator move and the baseline to
  beat: scale *every* node to the same highest ladder frequency whose
  predicted cluster total fits the target.  Power-fair, performance-blind:
  a compute-bound rank on the critical path is throttled exactly as hard
  as a rank that spends the window waiting for messages.
* :class:`SlackRedistributionPolicy` — slack-aware redistribution in the
  spirit of Medhat et al.'s MPI power redistribution: rank nodes by their
  windowed *compute intensity* (power-inferred, so busy-wait spinning
  doesn't masquerade as computation) and take frequency away from the
  slackest nodes first.  Communication- and memory-bound ranks give up
  headroom they weren't converting into progress; compute-bound ranks
  keep their clocks, so at an equal budget the job finishes sooner.

Both are deterministic: ties in intensity break by node id, and every
allocation is recomputed from the ceiling each window (no hidden state),
so a run is reproducible from its telemetry alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.hardware.dvfs import DVFSTable, OperatingPoint

from repro.powercap.telemetry import NodeWindowSample

__all__ = [
    "CapAllocation",
    "CapPolicy",
    "UniformCapPolicy",
    "SlackRedistributionPolicy",
]

#: predicted node watts for (sample, candidate operating point)
PowerPredictor = Callable[[NodeWindowSample, OperatingPoint], float]


@dataclass(frozen=True)
class CapAllocation:
    """One window's decision: node id → frequency (Hz)."""

    frequencies: Dict[int, float]
    predicted_watts: float  #: policy's estimate of the resulting total
    feasible: bool  #: False when even the all-floors allocation predicts
    #: above target (the budget cannot be met on this ladder)


class CapPolicy:
    """Interface: map one telemetry window to a frequency allocation."""

    #: short label used in experiment tables ("uniform", "redist")
    name: str = "abstract"

    def allocate(
        self,
        samples: Sequence[NodeWindowSample],
        target_watts: float,
        table: DVFSTable,
        floor: OperatingPoint,
        ceiling: OperatingPoint,
        predict: PowerPredictor,
    ) -> CapAllocation:  # pragma: no cover - abstract
        raise NotImplementedError


class UniformCapPolicy(CapPolicy):
    """Every node at the same frequency: the PDU-style naive baseline."""

    name = "uniform"

    def allocate(
        self,
        samples: Sequence[NodeWindowSample],
        target_watts: float,
        table: DVFSTable,
        floor: OperatingPoint,
        ceiling: OperatingPoint,
        predict: PowerPredictor,
    ) -> CapAllocation:
        lo = table.index_of(floor.frequency)
        hi = table.index_of(ceiling.frequency)
        # Highest common frequency whose predicted total fits the target.
        for idx in range(hi, lo - 1, -1):
            point = table[idx]
            total = sum(predict(s, point) for s in samples)
            if total <= target_watts:
                return CapAllocation(
                    frequencies={s.node_id: point.frequency for s in samples},
                    predicted_watts=total,
                    feasible=True,
                )
        total = sum(predict(s, floor) for s in samples)
        return CapAllocation(
            frequencies={s.node_id: floor.frequency for s in samples},
            predicted_watts=total,
            feasible=False,
        )


class SlackRedistributionPolicy(CapPolicy):
    """Take frequency from slack-heavy nodes first, keep compute fast.

    Greedy descent: start every node at the ceiling, then repeatedly step
    down (one ladder notch) the node whose step frees the most watts per
    unit of predicted critical-path stretch, until the predicted cluster
    total fits the target.  Slack-heavy nodes' steps are near-free, so
    compute headroom concentrates on the nodes converting it into
    progress — the redistribution that Medhat et al. perform with
    per-node power caps, done here directly in frequency space.  When
    the measured intensities are too uniform to tell anyone apart
    (:attr:`_BALANCE_THRESHOLD`), the policy defers to the uniform
    allocation, which is optimal for a balanced bulk-synchronous job.

    Parameters
    ----------
    intensity_of:
        Maps a sample to its compute intensity in [0, 1] (the governor
        wires in the power-inferred metric from
        :func:`repro.powercap.telemetry.compute_intensity`).
    """

    name = "redist"

    #: guards the cost ratio when a node has zero compute intensity
    #: (pure slack: stepping it down is free, so its score is huge)
    _EPSILON_PENALTY = 1e-6

    #: intensity at which a node counts as compute-saturated.  A 100 %
    #: busy node's intensity is *censored* at 1.0 — the telemetry cannot
    #: see the backlog queued behind the window — so "the measured work
    #: still fits at this frequency" is meaningless for it: any notch
    #: down stretches its critical path proportionally.
    _SATURATION = 0.95

    #: intensity spread (max − min across nodes) below which the cluster
    #: counts as *balanced* and redistribution defers to the uniform
    #: allocation.  With nothing to redistribute, equal frequencies are
    #: optimal for a bulk-synchronous job (the slowest node sets the
    #: pace), and the telemetry cannot split a small α gap between
    #: memory stalls (critical-path, non-absorbing) and busy-wait spin
    #: (pure slack) — both draw ≈0.4–0.45 of full power.
    _BALANCE_THRESHOLD = 0.1

    def __init__(
        self, intensity_of: Callable[[NodeWindowSample], float] | None = None
    ):
        self._intensity_of = intensity_of

    def allocate(
        self,
        samples: Sequence[NodeWindowSample],
        target_watts: float,
        table: DVFSTable,
        floor: OperatingPoint,
        ceiling: OperatingPoint,
        predict: PowerPredictor,
    ) -> CapAllocation:
        if self._intensity_of is None:
            raise RuntimeError(
                "SlackRedistributionPolicy needs an intensity metric; "
                "the CapGovernor wires one in automatically"
            )
        lo = table.index_of(floor.frequency)
        hi = table.index_of(ceiling.frequency)
        by_id = {s.node_id: s for s in samples}
        idx = {s.node_id: hi for s in samples}
        watts = {s.node_id: predict(s, table[hi]) for s in samples}
        intensity = {nid: self._intensity_of(s) for nid, s in by_id.items()}
        total = sum(watts.values())

        spread = max(intensity.values()) - min(intensity.values())
        if spread < self._BALANCE_THRESHOLD:
            return UniformCapPolicy().allocate(
                samples, target_watts, table, floor, ceiling, predict
            )

        def overrun(nid: int, point: OperatingPoint) -> float:
            """Predicted fraction by which the node overshoots the barrier.

            ``intensity`` is the share of the sampled window spent on
            frequency-sensitive work at the sampled frequency; at a
            candidate frequency that work stretches by ``f_sampled/f``.
            While the stretched work still fits inside the window
            (ratio ≤ 1) the node is merely converting slack into useful
            time and the critical path is untouched.
            """
            ratio = intensity[nid] * (by_id[nid].frequency / point.frequency)
            return max(0.0, ratio - 1.0)

        def step_score(nid: int):
            """Watts freed per unit of *critical-path* stretch for a notch.

            Slack-heavy nodes overrun nothing until their slack is used
            up, so their steps are near-free (epsilon penalty) and they
            are stripped first — the redistribution.  Saturated nodes
            (see :attr:`_SATURATION`) pay the full proportional stretch
            for every notch, which grows as a node drops further, so
            reductions spread across nodes instead of piling onto one:
            on a balanced workload the policy degenerates to (roughly)
            the uniform allocation instead of underbidding it.
            """
            cur, nxt = table[idx[nid]], table[idx[nid] - 1]
            freed = watts[nid] - predict(by_id[nid], nxt)
            if intensity[nid] >= self._SATURATION:
                penalty = cur.frequency / nxt.frequency - 1.0
            else:
                penalty = overrun(nid, nxt) - overrun(nid, cur)
            return freed / (penalty + self._EPSILON_PENALTY)

        while total > target_watts:
            candidates = [nid for nid in idx if idx[nid] > lo]
            if not candidates:  # everyone is at the floor already
                return CapAllocation(
                    frequencies={
                        nid: table[i].frequency for nid, i in idx.items()
                    },
                    predicted_watts=total,
                    feasible=False,
                )
            # Best watts-per-slowdown first; node id breaks ties so the
            # allocation is deterministic.
            best = max(candidates, key=lambda nid: (step_score(nid), -nid))
            idx[best] -= 1
            new_watts = predict(by_id[best], table[idx[best]])
            total += new_watts - watts[best]
            watts[best] = new_watts
        return CapAllocation(
            frequencies={nid: table[i].frequency for nid, i in idx.items()},
            predicted_watts=total,
            feasible=True,
        )
