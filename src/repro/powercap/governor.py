"""The cluster cap governor: a periodic power-budget control loop.

One :class:`CapGovernor` runs per cluster (where the cpuspeed daemon runs
per node and cannot see the cluster total).  Every control interval it

1. closes a telemetry window — per-node windowed average watts from the
   power timelines plus ``/proc/stat`` busy fractions
   (:class:`~repro.powercap.telemetry.ClusterTelemetry`);
2. asks its :class:`~repro.powercap.policy.CapPolicy` for the next
   per-node frequency allocation against the *derated* target
   ``cluster_watts × (1 − safety_margin)`` — the margin covers the
   one-window prediction lag while the budget's ``tolerance`` defines
   compliance;
3. applies the allocation as per-node **ceilings** through
   :class:`~repro.dvs.capped.CappedCpuFreq`, so it composes with any
   inner DVS controller instead of fighting it.

Before the job starts, :meth:`start` installs a worst-case allocation
(every node assumed fully active) so the run is compliant from t=0 — the
governor then *relaxes* toward measured slack rather than chasing an
initial violation.

Since the control-plane refactor the governor no longer touches hardware
itself: step 3 became *emit a* :class:`~repro.powercap.actions.GovernorPlan`
*and route it through the registered*
:mod:`~repro.powercap.actuators`.  With the default (legacy-compatible)
policies every plan is pure DVFS and the control trajectory is
bit-identical to the pre-refactor inline path; an
:class:`~repro.powercap.elastic.ElasticPolicy` additionally emits core
allocation and node gate/wake actions through the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Union

from repro.dvs.capped import CappedCpuFreq
from repro.hardware.activity import CpuActivity
from repro.hardware.cluster import Cluster
from repro.obs.tracer import active_tracer
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import Process
from repro.util.validation import check_fraction, check_positive

from repro.powercap.actions import GovernorPlan, SetFreqCeiling
from repro.powercap.actuators import (
    Actuator,
    NodeGateActuator,
    default_actuators,
    dispatch_plan,
)
from repro.powercap.budget import PowerBudget
from repro.powercap.elastic import ElasticPolicy, PlanContext
from repro.powercap.monitor import InvariantMonitor
from repro.powercap.policy import (
    CapAllocation,
    CapPolicy,
    SlackRedistributionPolicy,
    UniformCapPolicy,
)
from repro.powercap.resilience import (
    RepairEvent,
    ResilienceConfig,
    StuckState,
    describe_mhz,
)
from repro.powercap.telemetry import (
    ClusterTelemetry,
    NodeWindowSample,
    compute_intensity,
    demand_power,
    predict_node_power,
)

__all__ = ["CapGovernorConfig", "GovernorWindow", "CapGovernor"]


@dataclass(frozen=True)
class CapGovernorConfig:
    """Control-loop tuning knobs."""

    #: seconds between telemetry windows / reallocations
    interval: float = 0.25
    #: fraction of the cap held back as control headroom: allocations
    #: target ``cluster_watts × (1 − safety_margin)`` so that one window
    #: of prediction lag stays inside the budget's tolerance band
    safety_margin: float = 0.05
    #: per-window retention of each node's demand high-water mark: a node
    #: keeps ``demand_decay × previous demand`` even if the latest window
    #: sampled it blocked (e.g. at a barrier), so one quiet window cannot
    #: talk the allocator into freeing headroom the node will reclaim a
    #: moment later.  0 trusts each window alone; →1 never forgets.
    demand_decay: float = 0.5

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)
        check_fraction("safety_margin", self.safety_margin)
        check_fraction("demand_decay", self.demand_decay)


@dataclass(frozen=True)
class GovernorWindow:
    """One closed control window, for compliance reporting."""

    t0: float
    t1: float
    cluster_avg_watts: float  #: measured average over [t0, t1]
    compliant: bool  #: within cap × (1 + tolerance)
    frequencies: Dict[int, float]  #: allocation applied *after* this window
    predicted_watts: float  #: policy's estimate for the new allocation
    feasible: bool  #: policy could meet the target on this ladder

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(
                f"window ends before it starts: t0={self.t0}, t1={self.t1}"
            )

    @property
    def duration(self) -> float:
        """Window length in seconds (never negative; 0-length windows
        are rejected before construction by the governor)."""
        return self.t1 - self.t0


class CapGovernor:
    """Periodic cluster-wide power-cap enforcement process.

    Most callers never construct one directly —
    :class:`~repro.powercap.strategy.PowerCapStrategy` builds and starts
    a governor inside the standard ``prepare → run → teardown`` protocol.
    Direct construction is for driving the loop yourself::

        from repro.hardware.cluster import Cluster
        from repro.hardware.spec import ClusterSpec
        from repro.powercap import CapGovernor, CapGovernorConfig, PowerBudget
        from repro.simmpi import run_spmd

        cluster = Cluster.from_spec(ClusterSpec.homogeneous(8))
        governor = CapGovernor(
            cluster,
            PowerBudget(cluster_watts=130.0),
            config=CapGovernorConfig(interval=0.25, safety_margin=0.05),
        )
        governor.start(cluster.engine)   # installs the worst-case
        result = run_spmd(cluster, program, n_ranks=8)  # governor ticks
        governor.stop()

        for window in governor.windows:  # one record per control interval
            print(window.t0, window.cluster_avg_watts, window.compliant)
        print(governor.achieved_average_watts(), governor.violation_count)

    ``windows`` is the raw compliance record;
    :func:`repro.metrics.powercap.build_cap_report` turns it into the
    report the ``powercap`` experiment tabulates.
    """

    def __init__(
        self,
        cluster: Cluster,
        budget: PowerBudget,
        policy: Optional[Union[CapPolicy, ElasticPolicy]] = None,
        config: Optional[CapGovernorConfig] = None,
        cpufreqs: Optional[Dict[int, CappedCpuFreq]] = None,
        resilience: Optional[ResilienceConfig] = None,
        monitor: Optional[InvariantMonitor] = None,
        actuators: Optional[Sequence[Actuator]] = None,
        wake_latency_s: float = 0.5,
    ):
        self.cluster = cluster
        self.budget = budget
        self.policy = policy or SlackRedistributionPolicy()
        self.config = config or CapGovernorConfig()
        if isinstance(self.policy, ElasticPolicy) and resilience is not None:
            # The resilient path's watchdog would declare an orderly
            # gated node dead (dark + near-zero draw is exactly its
            # crash signature); composing the two needs a gating-aware
            # watchdog that does not exist yet.
            raise ValueError(
                "ElasticPolicy and ResilienceConfig cannot be combined: "
                "the crash watchdog cannot tell an orderly gated node "
                "from a dead one"
            )
        #: ``None`` = legacy fair-weather control loop; a
        #: :class:`~repro.powercap.resilience.ResilienceConfig` enables
        #: the degraded-mode defenses (stale fallback, watchdog,
        #: stuck-frequency re-apply, rejoin containment)
        self.resilience = resilience
        #: always-on assertion layer recording invariant breaches
        self.monitor = monitor if monitor is not None else InvariantMonitor(budget)
        self.cpufreqs = cpufreqs or {
            node.node_id: CappedCpuFreq(node, cluster.calibration)
            for node in cluster.nodes
        }
        # What the governor *believes* it applied per node — shared by
        # reference with the DVFS actuator, which records every ceiling
        # it installs; the hardened path checks telemetry against it.
        self._pending_target: Dict[int, float] = {}
        if actuators is None:
            actuators = default_actuators(
                cluster,
                self.cpufreqs,
                self._pending_target,
                wake_latency_s=wake_latency_s,
            )
        #: the control plane's hands, one per action kind it can execute
        self.actuators: List[Actuator] = list(actuators)
        self._routes: Dict[type, Actuator] = {
            kind: actuator
            for actuator in self.actuators
            for kind in actuator.kinds
        }
        self._gate_actuator: Optional[NodeGateActuator] = next(
            (a for a in self.actuators if isinstance(a, NodeGateActuator)),
            None,
        )
        #: node ids the governor has gated and not yet seen powered again
        self._gated: set = set()
        self._model = cluster.nodes[0].power_model
        self._table = cluster.table
        self._floor, self._ceiling = budget.resolve_bounds(self._table)
        #: per-node compute-demand high-water mark (decayed each window);
        #: missing nodes read as the worst-case 1.0
        self._demand: Dict[int, float] = {}
        # Memoised _predict per (sample, point) within one control
        # window — the greedy allocator re-evaluates the same pair on
        # every step-selection pass.  Both inputs to the prediction
        # (the sample and the demand high-water marks) are fixed between
        # _observe_demand calls, which is where the memo resets; entries
        # hold strong references so ids cannot be reused while cached.
        self._predict_memo: Dict[tuple, tuple] = {}
        # Wire the demand-tracked slack metric into the policy if it
        # wants one and the caller didn't supply their own.
        if (
            isinstance(self.policy, SlackRedistributionPolicy)
            and self.policy._intensity_of is None
        ):
            self.policy._intensity_of = lambda s: self._demand_of(s.node_id)
        if isinstance(self.policy, ElasticPolicy):
            if self.policy._intensity_of is None:
                self.policy._intensity_of = lambda s: self._demand_of(
                    s.node_id
                )
            inner = self.policy.inner
            if (
                isinstance(inner, SlackRedistributionPolicy)
                and inner._intensity_of is None
            ):
                inner._intensity_of = lambda s: self._demand_of(s.node_id)
        self._telemetry = ClusterTelemetry(cluster)
        self._process: Optional[Process] = None
        self._stopped = False
        #: closed control windows, oldest first
        self.windows: List[GovernorWindow] = []
        # Degraded-mode bookkeeping (only driven when resilience is on).
        self._last_sample: Dict[int, NodeWindowSample] = {}
        self._dark_count: Dict[int, int] = {}
        self._dead: set = set()
        self._stuck: Dict[int, StuckState] = {}
        #: defensive actions taken by the hardened control path
        self.repair_log: List[RepairEvent] = []

    # ------------------------------------------------------------------
    @property
    def target_watts(self) -> float:
        """The derated allocation target the policy works against."""
        return self.budget.cluster_watts * (1.0 - self.config.safety_margin)

    def _demand_of(self, node_id: int) -> float:
        """Decayed high-water compute intensity, floored at spin draw.

        The spin floor keeps the allocator honest about blocked ranks: a
        node that sampled near-idle can wake into a full busy-wait
        (α≈0.4 at 100 % busy — the Fig-3 artifact is MPICH-1's *default*
        waiting behaviour) within one control window, so it is never
        budgeted below its spinning draw.  Nodes never seen read as the
        worst-case 1.0.
        """
        spin = self._model.cpu.factors[CpuActivity.SPIN]
        return max(self._demand.get(node_id, 1.0), spin)

    def _observe_demand(self, samples: List[NodeWindowSample]) -> None:
        """Fold a window's measured intensities into the high-water marks.

        ``max(measured, decay × previous)``: one window that catches a
        compute rank blocked at a barrier cannot talk the allocator into
        freeing headroom the rank will reclaim a moment later, while a
        genuine phase change is forgotten within a few windows.
        """
        for s in samples:
            measured = compute_intensity(self._model, self._table, s)
            prev = self._demand.get(s.node_id, 1.0)
            self._demand[s.node_id] = max(
                measured, self.config.demand_decay * prev
            )
        self._predict_memo.clear()

    def _predict(self, sample: NodeWindowSample, point) -> float:
        """Node power at ``point``: mix carryover vs demand, worst wins.

        The mix-carryover term (:func:`predict_node_power`) captures the
        measured activity blend; the demand term assumes the node runs
        at its recent high-water intensity for the whole next window.
        Taking the max makes allocation robust to barrier-boundary
        windows that sample a transiently quiet mix.
        """
        key = (id(sample), id(point))
        hit = self._predict_memo.get(key)
        if hit is not None:
            return hit[0]
        watts = max(
            predict_node_power(self._model, self._table, sample, point),
            demand_power(
                self._model, self._table, self._demand_of(sample.node_id), point
            ),
        )
        self._predict_memo[key] = (watts, sample, point)
        return watts

    def _apply(self, allocation: CapAllocation) -> None:
        """Install a pure-DVFS allocation through the control plane."""
        self._apply_plan(GovernorPlan.from_allocation(allocation))

    def _apply_plan(self, plan: GovernorPlan) -> None:
        """Route a plan's actions to their actuators (daemon context)."""
        dispatch_plan(plan, self._routes)
        self._gated.update(plan.gated_node_ids)

    def _plan_elastic(self, samples: List[NodeWindowSample]) -> GovernorPlan:
        """One elastic control decision: context assembly + policy.plan.

        Reconciles the gating books first: a node the actuator finished
        waking is powered again and must leave ``_gated`` *before* the
        policy counts suspend reserves (its fresh telemetry sample is
        already in ``samples`` — the cluster sampler saw it powered).
        """
        policy = self.policy
        assert isinstance(policy, ElasticPolicy)
        for nid in sorted(self._gated):
            if self.cluster.nodes[nid].cpu.powered:
                self._gated.discard(nid)
                self._dark_count[nid] = 0
        gate = self._gate_actuator
        ctx = PlanContext(
            samples=tuple(samples),
            target_watts=self.target_watts,
            table=self._table,
            floor=self._floor,
            ceiling=self._ceiling,
            predict=self._predict,
            base_power=self._model.base_power,
            gated_draw_watts=self._model.gated_power,
            wake_cost_watts=demand_power(
                self._model, self._table, 1.0, self._floor
            ),
            gated=frozenset(self._gated),
            waking=(
                frozenset(gate.waking) if gate is not None else frozenset()
            ),
            core_allocation={
                node.node_id: node.cpu.core_allocation
                for node in self.cluster.nodes
                if node.cpu.powered
            },
            protected=policy.protected,
        )
        return policy.plan(ctx)

    # ------------------------------------------------------------------
    def start(self, engine: Engine) -> Process:
        """Install the worst-case allocation and launch the control loop."""
        if self._process is not None:
            raise RuntimeError("governor already started")
        self._apply(self._initial_allocation())
        self._process = engine.process(self._run(engine), name="cap-governor")
        return self._process

    def stop(self) -> None:
        """Close the trailing partial window and stop the loop.

        Called from teardown (ordinary Python context, after the job
        completed) so compliance reporting covers the *whole* run, not
        just full control intervals.
        """
        self._stopped = True
        if self.cluster.engine.now > self._telemetry.window_start:
            self._close_window(reallocate=False)

    def _initial_allocation(self) -> CapAllocation:
        """Worst-case uniform allocation: every node fully active.

        With no telemetry yet, assume α=1 at 100 % busy on every node and
        pick the highest common frequency that still fits the target —
        compliant from the first instant, refined as windows arrive.
        """
        now = self.cluster.engine.now
        lo = self._table.index_of(self._floor.frequency)
        hi = self._table.index_of(self._ceiling.frequency)
        n = self.cluster.n_nodes
        for idx in range(hi, lo - 1, -1):
            point = self._table[idx]
            worst = NodeWindowSample(
                node_id=-1,
                t0=now,
                t1=now,
                avg_watts=self._model.power(
                    point, state=CpuActivity.ACTIVE, utilization=1.0
                ),
                busy_fraction=1.0,
                frequency=point.frequency,
            )
            total = n * self._predict(worst, point)
            if total <= self.target_watts or idx == lo:
                return CapAllocation(
                    frequencies={
                        node.node_id: point.frequency
                        for node in self.cluster.nodes
                    },
                    predicted_watts=total,
                    feasible=total <= self.target_watts,
                )
        raise AssertionError("unreachable: loop always returns at the floor")

    # ------------------------------------------------------------------
    def _close_window(self, reallocate: bool) -> List[NodeWindowSample]:
        t0 = self._telemetry.window_start
        t1 = self.cluster.engine.now
        if t1 <= t0:
            # Zero-length window: the loop and stop() fired at the same
            # sim time.  Nothing was measured, so there is nothing to
            # close and no basis to reallocate on.
            return []
        samples = self._telemetry.sample()
        avg = self.cluster.window_average_power(t0, t1)
        self._observe_demand(samples)
        if reallocate:
            if isinstance(self.policy, ElasticPolicy):
                plan = self._plan_elastic(samples)
                self._apply_plan(plan)
                allocation = CapAllocation(
                    frequencies=plan.frequencies,
                    predicted_watts=plan.predicted_watts,
                    feasible=plan.feasible,
                )
            elif self.resilience is not None:
                allocation = self._allocate_resilient(samples, t0, t1)
                self._apply(allocation)
            else:
                target = self.target_watts
                if self._gated:
                    # Nodes someone gated out from under a legacy policy
                    # still draw suspend power the cap must cover; the
                    # guard keeps the no-gating path bit-identical
                    # (``target - 0.0`` is not a float no-op in general).
                    target -= self._model.gated_power * len(self._gated)
                allocation = self.policy.allocate(
                    samples,
                    target,
                    self._table,
                    self._floor,
                    self._ceiling,
                    self._predict,
                )
                self._apply(allocation)
        else:
            allocation = CapAllocation(
                frequencies={
                    nid: cf.current_frequency for nid, cf in self.cpufreqs.items()
                },
                predicted_watts=avg,
                feasible=True,
            )
        window = GovernorWindow(
            t0=t0,
            t1=t1,
            cluster_avg_watts=avg,
            compliant=self.budget.complies(avg),
            frequencies=dict(allocation.frequencies),
            predicted_watts=allocation.predicted_watts,
            feasible=allocation.feasible,
        )
        self.windows.append(window)
        tracer = active_tracer()
        if tracer.enabled:
            tracer.span(
                "window", "powercap.governor", "governor", t0, t1,
                avg_watts=avg, target_watts=self.target_watts,
                compliant=window.compliant, feasible=allocation.feasible,
                reallocated=reallocate,
            )
            tracer.counter("cluster_watts", "governor", t1, avg)
        self.monitor.observe_window(
            window,
            target_watts=self.target_watts,
            node_frequencies={
                node.node_id: node.cpu.frequency
                for node in self.cluster.nodes
                if node.cpu.powered
            },
            ceilings={nid: cf.ceiling for nid, cf in self.cpufreqs.items()},
            allocated=reallocate,
        )
        return samples

    # ------------------------------------------------------------------
    # degraded-mode control path (resilience is not None)
    # ------------------------------------------------------------------
    @property
    def dead_nodes(self) -> frozenset:
        """Node ids the watchdog currently believes are crashed."""
        return frozenset(self._dead)

    def _repair(self, node_id: int, action: str, detail: str = "") -> None:
        self.repair_log.append(
            RepairEvent(
                time=self.cluster.engine.now,
                node_id=node_id,
                action=action,
                detail=detail,
            )
        )

    def _contain(self, node_id: int) -> None:
        """Force a node's ceiling *and* actual clock down to the floor.

        Used on rejoin (and on a reboot seen only through the PDU): a
        restarted node boots at the ladder's fastest point regardless of
        the ceiling the governor had on the books, so an explicit
        daemon-context down-switch is required — ``drive_down`` tells
        the DVFS actuator to force the clock even when ``set_ceiling``
        alone would no-op.
        """
        self._routes[SetFreqCeiling].apply(
            SetFreqCeiling(
                node_id=node_id,
                frequency=self._floor.frequency,
                drive_down=True,
            )
        )

    def _worst_case_sample(
        self, node_id: int, t0: float, t1: float
    ) -> NodeWindowSample:
        """Synthetic fully-active sample at the node's current ceiling.

        The stand-in for a stale node: it cannot legally draw more than
        this (unless also stuck, which the stuck path handles), so
        budgeting it here keeps the allocation conservative while blind.
        """
        point = self._table.point_for(self.cpufreqs[node_id].ceiling)
        return NodeWindowSample(
            node_id=node_id,
            t0=t0,
            t1=t1,
            avg_watts=self._model.power(
                point, state=CpuActivity.ACTIVE, utilization=1.0
            ),
            busy_fraction=1.0,
            frequency=point.frequency,
        )

    def _check_stuck(
        self, sample: NodeWindowSample, cfg: ResilienceConfig
    ) -> Optional[float]:
        """Stuck-frequency detection + bounded exponential-backoff retry.

        Returns the node's *actual* predicted-power carve-out frequency
        when it is stuck above its applied ceiling (the caller removes it
        from the allocatable set and compresses the survivors), or
        ``None`` when the node is honouring its ceiling.
        """
        nid = sample.node_id
        pending = self._pending_target.get(nid)
        if pending is None or sample.frequency <= pending * (1.0 + 1e-9):
            if nid in self._stuck:
                del self._stuck[nid]
                self._repair(nid, "unstuck", f"honouring {describe_mhz(pending)}")
            return None
        state = self._stuck.get(nid)
        if state is None or state.target != pending:
            state = StuckState(target=pending)
            self._stuck[nid] = state
        state.windows += 1
        if not state.gave_up and state.windows >= state.next_retry:
            if state.attempts < cfg.max_reapply_attempts:
                state.attempts += 1
                state.next_retry = state.windows + cfg.backoff_base_windows * (
                    2 ** (state.attempts - 1)
                )
                self.cpufreqs[nid].set_speed_now(pending)
                self._repair(
                    nid,
                    "reapply",
                    f"attempt {state.attempts}: stuck at "
                    f"{describe_mhz(sample.frequency)}, want "
                    f"{describe_mhz(pending)}",
                )
            else:
                state.gave_up = True
                self._repair(
                    nid,
                    "gave-up",
                    f"{cfg.max_reapply_attempts} re-applies refused; "
                    "budgeting node at its actual clock",
                )
        return sample.frequency

    def _allocate_resilient(
        self, samples: List[NodeWindowSample], t0: float, t1: float
    ) -> CapAllocation:
        """The hardened allocation: survive missing/late/false telemetry.

        Partitions nodes into *usable* (fresh or tolerably-stale
        samples the policy may allocate), *carved* (uncontrollable for
        this window — crashed, rejoining, or stuck — budgeted at their
        known draw and subtracted from the target), and applies the
        watchdog / stale / stuck defenses along the way.
        """
        cfg = self.resilience
        assert cfg is not None
        present = {s.node_id: s for s in samples}
        pdu = self.cluster.window_node_average_powers(t0, t1)
        usable: List[NodeWindowSample] = []
        carved: Dict[int, float] = {}
        forced: Dict[int, float] = {}
        stale_fallback = False

        for node in self.cluster.nodes:
            nid = node.node_id
            if nid in self._gated:
                if node.cpu.powered:
                    # Woken since last window: back under normal control.
                    self._gated.discard(nid)
                else:
                    # Orderly gated, not crashed: dark by design, drawing
                    # exactly the platform's suspend power.  Budget that
                    # draw and keep the watchdog/stale counters quiet —
                    # without this carve the dead/stale machinery would
                    # misclassify the node (the latent gating/telemetry
                    # interaction this path now handles).
                    carved[nid] = self._model.gated_power
                    self._dark_count[nid] = 0
                    continue
            sample = present.get(nid)
            if sample is None:
                dark = self._dark_count.get(nid, 0) + 1
                self._dark_count[nid] = dark
                drawing = pdu.get(nid, 0.0) > cfg.dead_watts
                if nid in self._dead:
                    if drawing:
                        # Rebooting (PDU sees it) but the agent is not
                        # back yet: contain the full-clock boot now.
                        self._contain(nid)
                    carved[nid] = pdu.get(nid, 0.0)
                    forced[nid] = self._floor.frequency
                    continue
                if dark >= cfg.dead_windows and not drawing:
                    # Watchdog: dark *and* drawing nothing — crashed.
                    # Its budget share redistributes to the survivors
                    # (carve-out of 0 W); pre-floor the ceiling so the
                    # eventual reboot is contained as early as possible.
                    self._dead.add(nid)
                    self._repair(
                        nid,
                        "declared-dead",
                        f"dark {dark} windows at "
                        f"{pdu.get(nid, 0.0):.2f} W",
                    )
                    self._contain(nid)
                    carved[nid] = 0.0
                    forced[nid] = self._floor.frequency
                    continue
                if dark >= cfg.stale_windows:
                    # Alive but blind: budget it at worst case and drop
                    # to the uniform policy for the whole window.
                    if dark == cfg.stale_windows:
                        self._repair(
                            nid,
                            "stale-fallback",
                            f"dark {dark} windows, still drawing "
                            f"{pdu.get(nid, 0.0):.2f} W",
                        )
                    stale_fallback = True
                    usable.append(self._worst_case_sample(nid, t0, t1))
                    continue
                # One-window blip: carry the last sample forward.
                last = self._last_sample.get(nid)
                usable.append(
                    last
                    if last is not None
                    else self._worst_case_sample(nid, t0, t1)
                )
                continue
            # Sample present.
            self._dark_count[nid] = 0
            self._last_sample[nid] = sample
            if nid in self._dead:
                # Rejoin: telemetry is back.  Contain the reboot-at-max
                # hazard immediately, and hold the node at the floor for
                # one window before normal allocation resumes.
                self._dead.discard(nid)
                self._repair(
                    nid, "rejoined", "containing at the ladder floor"
                )
                self._contain(nid)
                if cfg.rejoin_at_floor:
                    carved[nid] = self._predict(sample, self._floor)
                    forced[nid] = self._floor.frequency
                    continue
            stuck_frequency = self._check_stuck(sample, cfg)
            if stuck_frequency is not None:
                # Uncontrollable at its actual clock: budget reality,
                # compress the survivors, keep the intended ceiling on
                # the books so the retry loop has a target.
                actual = self._table.point_for(stuck_frequency)
                carved[nid] = self._predict(sample, actual)
                forced[nid] = self._pending_target[nid]
                continue
            usable.append(sample)

        reserve = sum(carved.values())
        target = self.target_watts - reserve
        policy: CapPolicy = self.policy
        if stale_fallback and not isinstance(policy, UniformCapPolicy):
            policy = UniformCapPolicy()
        if not usable:
            return CapAllocation(
                frequencies=dict(forced),
                predicted_watts=reserve,
                feasible=reserve <= self.target_watts,
            )
        if target <= 0:
            # The uncontrollable draw alone exceeds the target: all the
            # governor can do is pin every controllable node at the
            # floor and report infeasibility.
            frequencies = {s.node_id: self._floor.frequency for s in usable}
            frequencies.update(forced)
            predicted = reserve + sum(
                self._predict(s, self._floor) for s in usable
            )
            return CapAllocation(
                frequencies=frequencies,
                predicted_watts=predicted,
                feasible=False,
            )
        allocation = policy.allocate(
            usable, target, self._table, self._floor, self._ceiling, self._predict
        )
        frequencies = dict(allocation.frequencies)
        frequencies.update(forced)
        return CapAllocation(
            frequencies=frequencies,
            predicted_watts=allocation.predicted_watts + reserve,
            feasible=allocation.feasible,
        )

    def _run(self, engine: Engine) -> Generator[Event, object, None]:
        while not self._stopped:
            yield engine.timeout(self.config.interval)
            if self._stopped:
                return
            self._close_window(reallocate=True)

    # ------------------------------------------------------------------
    # compliance reporting
    # ------------------------------------------------------------------
    @property
    def violation_count(self) -> int:
        """Closed windows whose measured average exceeded the limit."""
        return sum(1 for w in self.windows if not w.compliant)

    @property
    def max_window_watts(self) -> float:
        """The worst windowed average observed (0.0 with no windows)."""
        return max((w.cluster_avg_watts for w in self.windows), default=0.0)

    def achieved_average_watts(self) -> float:
        """Duration-weighted average cluster power over all windows."""
        total_t = sum(w.duration for w in self.windows)
        if total_t <= 0:
            return 0.0
        return (
            sum(w.cluster_avg_watts * w.duration for w in self.windows) / total_t
        )
