"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — a counted FIFO resource (network links, the root
  assembly buffer, ...).  Requests are events; release wakes the next
  waiter at the same simulation time.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``; the
  message-matching queues in :mod:`repro.simmpi` are built on a filtered
  variant, :class:`FilterStore`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["Request", "Resource", "Store", "FilterStore"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager in generator code::

        req = link.request()
        yield req
        try:
            ...
        finally:
            link.release(req)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.engine)
        self.resource = resource


class Resource:
    """A counted, FIFO-ordered shared resource."""

    def __init__(self, engine: "Engine", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = int(capacity)
        self._users: List[Request] = []
        self._waiters: Deque[Request] = deque()
        self._contended: Optional[Event] = None

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiters)

    def request(self) -> Request:
        """Claim the resource; the returned event fires once granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(self)
        else:
            self._waiters.append(req)
            ev, self._contended = self._contended, None
            if ev is not None:
                ev.succeed(None)
        return req

    def contended(self) -> Event:
        """Event firing the next time a request has to queue.

        Bulk holders (the columnar fast path in
        :meth:`repro.hardware.network.NetworkFabric.transfer`) race this
        against their completion so they can hand the resource over at
        the next chunk boundary, reproducing the scalar walk's
        chunk-granularity fair sharing without per-chunk events while
        uncontended.  Note it only reports *future* arrivals — a holder
        must check :attr:`queue_length` for waiters that queued before
        the call.
        """
        ev = self._contended
        if ev is None:
            ev = Event(self.engine)
            self._contended = ev
        return ev

    def release(self, request: Request) -> None:
        """Give the resource back and wake the next waiter (if any)."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError(
                "release() of a request that does not hold the resource"
            ) from None
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed(self)

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request."""
        try:
            self._waiters.remove(request)
        except ValueError:
            raise SimulationError("cancel() of a request that is not waiting") from None


class Store:
    """Unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks.  ``get`` returns an event whose value is the item.
    """

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``, waking a blocked getter if one exists."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next available item."""
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_items(self) -> tuple:
        """Snapshot of the queued items (for tests and tracing)."""
        return tuple(self._items)


class FilterStore:
    """A store whose getters only accept items matching a predicate.

    This is the matching engine under simulated-MPI receives: a receive for
    ``(source, tag)`` blocks until a message satisfying the predicate is
    deposited.  Items that match no waiting getter queue up; getters that
    match no queued item queue up.  FIFO order is preserved *per predicate*
    (MPI's non-overtaking rule between a matching (source, tag) pair).
    """

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._items: List[object] = []
        self._getters: List[tuple] = []  # (event, predicate)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``; hand it to the first matching waiter, if any."""
        for idx, (ev, predicate) in enumerate(self._getters):
            if predicate(item):
                del self._getters[idx]
                ev.succeed(item)
                return
        self._items.append(item)

    def get(self, predicate: Callable[[object], bool]) -> Event:
        """Event that fires with the first item matching ``predicate``."""
        ev = Event(self.engine)
        for idx, item in enumerate(self._items):
            if predicate(item):
                del self._items[idx]
                ev.succeed(item)
                return ev
        self._getters.append((ev, predicate))
        return ev

    def probe(self, predicate: Callable[[object], bool]) -> Optional[object]:
        """Non-destructively look for a queued matching item (MPI_Iprobe)."""
        for item in self._items:
            if predicate(item):
                return item
        return None
