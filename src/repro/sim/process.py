"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator.  The generator *yields* events
(:class:`repro.sim.events.Event`) to wait for them; the value sent back into
the generator is the event's value.  A process is itself an event that
triggers when the generator returns (value = the ``return`` value) or raises
(failure), so processes can wait on each other — the SPMD launcher in
``repro.simmpi`` waits for all rank processes this way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.obs.tracer import active_tracer
from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["Process"]

ProcessGenerator = Generator[Event, object, object]


class Process(Event):
    """A simulated thread of control.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.sim.engine.Engine`.
    generator:
        A generator yielding :class:`Event` instances.
    name:
        Optional human-readable name used in traces and error messages.
    """

    __slots__ = ("generator", "name", "_target", "_resume_event", "_trace_t0")

    def __init__(
        self,
        engine: "Engine",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (``None`` when the
        #: process is scheduled to run or has terminated).
        self._target: Optional[Event] = None
        #: Birth time when a tracer was active at spawn (span on death).
        self._trace_t0: Optional[float] = (
            engine.now if active_tracer().enabled else None
        )

        # Kick the process off at the current simulation time.
        init = Event(engine)
        init.callbacks.append(self._resume)
        init.succeed(None)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for, if any."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.sim.errors.Interrupt` into the process.

        The interrupt is delivered at the current simulation time.  It is an
        error to interrupt a terminated process, or a process from within
        itself.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self.engine.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.engine)
        event.callbacks.append(self._deliver_interrupt)
        event.fail(Interrupt(cause))

    # ------------------------------------------------------------------
    # engine callbacks
    # ------------------------------------------------------------------
    def _deliver_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # died before the interrupt was processed
        # Detach from the current wait target; the interrupted wait is
        # abandoned (the target may still trigger later and is ignored).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(event)

    def _step(self, event: Event) -> None:
        """Advance the generator by one yield, driven by ``event``."""
        engine = self.engine
        engine._active_process = self
        try:
            if event._ok:
                result = self.generator.send(event._value)
            else:
                result = self.generator.throw(event._value)  # type: ignore[arg-type]
        except StopIteration as stop:
            engine._active_process = None
            self._trace_exit(failed=False)
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An interrupt escaped the process body: treat as failure.
            engine._active_process = None
            self._trace_exit(failed=True)
            self.fail(exc)
            return
        except BaseException as exc:
            engine._active_process = None
            self._trace_exit(failed=True)
            if engine.strict:
                raise
            self.fail(exc)
            return
        engine._active_process = None

        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}; processes must "
                "yield Event instances"
            )
        if result.engine is not engine:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another engine"
            )
        if result.callbacks is not None:
            result.callbacks.append(self._resume)
            self._target = result
        else:
            # Event already processed: resume immediately (same time step).
            immediate = Event(engine)
            immediate.callbacks.append(self._resume)
            immediate.trigger(result)
            self._target = immediate

    def _trace_exit(self, failed: bool) -> None:
        """Record the process's lifetime span (only if traced at spawn)."""
        if self._trace_t0 is None:
            return
        tracer = active_tracer()
        if tracer.enabled:
            if failed:
                tracer.span(
                    self.name, "sim.process", self.name,
                    self._trace_t0, self.engine.now, error=True,
                )
            else:
                tracer.span(
                    self.name, "sim.process", self.name,
                    self._trace_t0, self.engine.now,
                )
        self._trace_t0 = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
