"""Discrete-event simulation kernel.

A small, dependency-free process-interaction DES core: an :class:`Engine`
owning simulated time, one-shot :class:`Event` objects, generator-based
:class:`Process` objects, composite wait conditions, counted resources and
message stores, plus structured tracing.

Everything in ``repro`` that "takes time" — CPU work, DRAM stalls, network
transfers, daemon polling, battery refresh — is expressed as events against
a single engine, which is what lets the framework measure energy exactly
while still modelling asynchronous behaviour such as governor preemption.
"""

from repro.sim.columnar import ColumnarEngine, EngineStats
from repro.sim.engine import (
    Engine,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from repro.sim.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.factory import (
    ENGINE_MODES,
    engine_mode,
    make_engine,
    set_engine_mode,
    using_engine_mode,
)
from repro.sim.events import AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import FilterStore, Request, Resource, Store
from repro.sim.trace import NullRecorder, TraceRecord, TraceRecorder

__all__ = [
    "Engine",
    "ColumnarEngine",
    "EngineStats",
    "ENGINE_MODES",
    "engine_mode",
    "make_engine",
    "set_engine_mode",
    "using_engine_mode",
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "Resource",
    "Request",
    "Store",
    "FilterStore",
    "TraceRecord",
    "TraceRecorder",
    "NullRecorder",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]
