"""Structured trace recording for simulations.

Every subsystem (CPU state changes, DVS transitions, MPI message events,
meter samples) can emit trace records through a shared
:class:`TraceRecorder`.  Records are plain dicts so they serialise to JSON
lines without ceremony; the analysis layer consumes them for timeline
alignment and debugging.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder", "NullRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    category:
        Dotted subsystem name, e.g. ``"cpu.state"`` or ``"mpi.send"``.
    fields:
        Arbitrary JSON-serialisable payload.
    """

    time: float
    category: str
    fields: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"t": self.time, "cat": self.category}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True, default=str)


class TraceRecorder:
    """Collects :class:`TraceRecord` objects, optionally filtered.

    Parameters
    ----------
    categories:
        When given, only records whose category starts with one of these
        prefixes are kept.  ``None`` keeps everything.
    """

    #: Hot emitters check this before building a record's fields — a
    #: ``round()``/``str()`` payload for a recorder that drops everything
    #: is pure waste on the simulator's innermost loops.
    active = True

    def __init__(self, categories: Optional[List[str]] = None):
        self._records: List[TraceRecord] = []
        self._prefixes = tuple(categories) if categories else None

    def record(self, time: float, category: str, **fields: object) -> None:
        """Append a record (subject to the category filter)."""
        if self._prefixes is not None and not category.startswith(self._prefixes):
            return
        self._records.append(TraceRecord(time, category, dict(fields)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Records filtered by category prefix and/or predicate."""
        out = []
        for rec in self._records:
            if category is not None and not rec.category.startswith(category):
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def to_jsonl(self) -> str:
        """All records as JSON-lines text."""
        return "\n".join(rec.to_json() for rec in self._records)

    def clear(self) -> None:
        self._records.clear()


class NullRecorder(TraceRecorder):
    """A recorder that drops everything (zero overhead bookkeeping)."""

    active = False

    def __init__(self) -> None:
        super().__init__()

    def record(self, time: float, category: str, **fields: object) -> None:
        return None
