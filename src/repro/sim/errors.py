"""Exception types used by the discrete-event simulation kernel.

The kernel distinguishes three failure modes:

* :class:`SimulationError` — a structural misuse of the kernel (scheduling
  into the past, re-triggering an event, ...).  These are programming errors
  in the model and are never caught by the kernel itself.
* :class:`Interrupt` — an asynchronous exception thrown *into* a simulated
  process by another process (e.g. a DVS governor preempting a compute
  phase).  Models are expected to catch it.
* :class:`StopSimulation` — internal control-flow signal used by
  :meth:`repro.sim.engine.Engine.run` to terminate the event loop when the
  ``until`` event fires.  User code never sees it.
"""

from __future__ import annotations

__all__ = ["SimulationError", "Interrupt", "StopSimulation"]


class SimulationError(RuntimeError):
    """A structural misuse of the simulation kernel.

    Raised, for example, when an event is triggered twice, when a timeout
    with a negative delay is requested, or when ``run()`` is re-entered.
    """


class Interrupt(Exception):
    """Asynchronous interruption of a simulated process.

    Thrown into the generator of a :class:`repro.sim.process.Process` when
    another process calls :meth:`~repro.sim.process.Process.interrupt`.

    Parameters
    ----------
    cause:
        Arbitrary payload describing why the interrupt happened.  For the
        DVS substrate this is typically a frequency-change notification.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The payload passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.args[0]!r})"


class StopSimulation(Exception):
    """Internal signal that terminates :meth:`Engine.run`."""

    def __init__(self, value: object = None):
        super().__init__(value)

    @property
    def value(self) -> object:
        return self.args[0]
