"""Engine selection: the columnar core by default, the scalar oracle on demand.

Every experiment builds its engine through :func:`make_engine` (via
:meth:`repro.hardware.cluster.Cluster.from_spec`), so one switch flips the
whole framework between the two cores:

* ``columnar`` (default) — :class:`~repro.sim.columnar.ColumnarEngine`,
  the batched-frontier core with NumPy columns and O(1) cancellation;
* ``scalar`` — the original heap-walk :class:`~repro.sim.engine.Engine`,
  kept bit-for-bit intact as the property-test oracle.

Selection order: an explicit ``mode=`` argument, then the ambient
override installed by :func:`set_engine_mode` /
:func:`using_engine_mode`, then the ``REPRO_ENGINE`` environment
variable, then the default.  The mode is deliberately **not** part of
run-cache keys: the two cores are equivalence-tested to produce
identical event order and clock values, so a cached result is valid for
either (see ``docs/ENGINE.md``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.sim.columnar import ColumnarEngine
from repro.sim.engine import Engine

__all__ = [
    "ENGINE_MODES",
    "engine_mode",
    "make_engine",
    "set_engine_mode",
    "using_engine_mode",
]

#: mode name → engine class
ENGINE_MODES = {"scalar": Engine, "columnar": ColumnarEngine}

_DEFAULT_MODE = "columnar"
_override: Optional[str] = None


def _check_mode(mode: str) -> str:
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}; expected one of "
            f"{sorted(ENGINE_MODES)}"
        )
    return mode


def engine_mode() -> str:
    """The currently selected engine mode (``'columnar'`` or ``'scalar'``)."""
    if _override is not None:
        return _override
    raw = os.environ.get("REPRO_ENGINE")
    if raw is None:
        return _DEFAULT_MODE
    return _check_mode(raw.strip().lower())


def set_engine_mode(mode: Optional[str]) -> Optional[str]:
    """Install (or with ``None`` clear) the ambient engine-mode override.

    Returns the previous override so callers can restore it; prefer the
    :func:`using_engine_mode` context manager in tests and scripts.
    """
    global _override
    if mode is not None:
        _check_mode(mode)
    previous = _override
    _override = mode
    return previous


@contextmanager
def using_engine_mode(mode: str) -> Iterator[str]:
    """Context manager scoping an engine-mode override::

        with using_engine_mode("scalar"):
            run = run_measured(workload, strategy)   # on the oracle core
    """
    previous = set_engine_mode(mode)
    try:
        yield mode
    finally:
        set_engine_mode(previous)


def make_engine(
    start_time: float = 0.0,
    strict: bool = True,
    mode: Optional[str] = None,
) -> Engine:
    """Build an engine of the selected mode (see module docstring)."""
    cls = ENGINE_MODES[_check_mode(mode) if mode is not None else engine_mode()]
    return cls(start_time, strict)
