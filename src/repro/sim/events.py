"""Core event primitives for the discrete-event simulation kernel.

The design follows the classic process-interaction style (as popularised by
SimPy) but is intentionally small and dependency-free: an :class:`Event` is a
one-shot triggerable with a value or an exception; processes *yield* events
to wait for them; composite conditions (:class:`AnyOf` / :class:`AllOf`)
allow waiting on several events at once, which the CPU model uses to race a
work-completion timeout against a frequency-change notification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Engine

__all__ = ["PENDING", "Event", "Timeout", "Condition", "AnyOf", "AllOf"]


class _Pending:
    """Sentinel for "event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Life cycle::

        created -> triggered (succeed/fail) -> processed (callbacks ran)

    ``callbacks`` is a list of callables ``cb(event)`` invoked when the
    engine processes the event; it is set to ``None`` afterwards, which is
    how waiters detect that they missed the event and must resume
    immediately instead of registering a callback.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: object = PENDING
        self._ok: bool = True

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` when the event succeeded, ``False`` when it failed."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or the exception instance when it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully and schedule its callbacks."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() requires an exception instance, got {exception!r}"
            )
        self._ok = False
        self._value = exception
        self.engine.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (triggered) event onto this one."""
        if event._value is PENDING:
            raise SimulationError(f"cannot mirror untriggered event {event!r}")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at t={self.engine.now:.6g}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: object = None):
        if not 0.0 <= delay < float("inf"):
            # Same guard as Engine.schedule: a NaN delay slips past a plain
            # `delay < 0` check and corrupts heap ordering.
            raise SimulationError(f"non-finite or negative timeout delay {delay!r}")
        super().__init__(engine)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        engine.schedule(self, delay=delay)


class Condition(Event):
    """Waits for a combination of events.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, in trigger order — enough for waiters to find out
    which branch of an :class:`AnyOf` fired.

    A failure of any constituent fails the condition immediately.
    """

    __slots__ = ("_events", "_count_needed", "_num_ok")

    def __init__(
        self,
        engine: "Engine",
        events: Iterable[Event],
        count_needed: Optional[int] = None,
    ):
        super().__init__(engine)
        self._events: List[Event] = list(events)
        for ev in self._events:
            if ev.engine is not engine:
                raise SimulationError(
                    "all events of a condition must belong to the same engine"
                )
        n = len(self._events) if count_needed is None else count_needed
        self._count_needed = n
        self._num_ok = 0

        if n == 0:
            self.succeed({})
            return

        for ev in self._events:
            if ev.callbacks is None:
                # Already processed: account for it right away.
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._num_ok += 1
        if self._num_ok >= self._count_needed:
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only *processed* events count as having occurred: a Timeout carries
        # its value from creation, so `triggered` alone would wrongly include
        # timeouts that have not fired yet.
        return {ev: ev._value for ev in self._events if ev.processed and ev._ok}


class AnyOf(Condition):
    """Triggers as soon as *one* of the events triggers."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        events = list(events)
        super().__init__(engine, events, count_needed=min(1, len(events)))


class AllOf(Condition):
    """Triggers once *all* of the events have triggered."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, events, count_needed=None)
