"""The discrete-event simulation engine.

:class:`Engine` owns simulated time and the pending-event heap.  All other
kernel objects (:class:`~repro.sim.events.Event`,
:class:`~repro.sim.process.Process`, the resources in
:mod:`repro.sim.resources`) are created against an engine and scheduled
through it.

Time is a ``float`` in **seconds**; the hardware layer converts everything
(cycle counts, byte counts) to seconds before scheduling.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Iterable, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Engine", "PRIORITY_URGENT", "PRIORITY_NORMAL", "PRIORITY_LOW"]

#: Scheduling priorities: ties in time are broken first by priority, then by
#: insertion order.  Urgent is used for event-triggering bookkeeping so that
#: e.g. a resource release at time *t* is observed by requests at time *t*.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_INF = float("inf")


class Engine:
    """Discrete-event simulation core.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).
    strict:
        When ``True`` (the default), an uncaught exception inside a process
        propagates out of :meth:`run` immediately, which is the behaviour
        you want in tests.  When ``False`` the process simply fails and
        waiters observe the exception.
    """

    #: True on engines that batch same-timestamp events through columnar
    #: storage (see :class:`repro.sim.columnar.ColumnarEngine`).
    columnar = False
    #: True on engines exposing O(1) ``cancel()`` — the hardware layer's
    #: bulk fast paths (whole-message transfers, re-timed ``run_cycles``)
    #: require it and fall back to per-chunk/per-race event walks here.
    supports_cancel = False

    def __init__(self, start_time: float = 0.0, strict: bool = True):
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self.strict = strict
        self._running = False

    # ------------------------------------------------------------------
    # clock & queue
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Queue ``event`` for processing ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:
            # NaN fails both comparisons; a NaN (or inf) key would silently
            # corrupt heap ordering, so reject every non-finite delay here.
            raise SimulationError(
                f"cannot schedule into the past or with a non-finite "
                f"delay (delay={delay})"
            )
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else _INF

    def _has_pending(self) -> bool:
        """Whether any event is still queued (the :meth:`run` loop guard)."""
        return bool(self._queue)

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

    def run(self, until: object = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue drains;
            * a number — run until that simulated time;
            * an :class:`Event` — run until the event is processed, and
              return its value (re-raising its exception on failure).
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")

        stop_at: Optional[float] = None
        watched: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            watched = until
            if watched.callbacks is None:
                # Already processed; nothing to do.
                if not watched._ok:
                    raise watched._value  # type: ignore[misc]
                return watched._value
            watched.callbacks.append(self._stop_on_event)
        elif isinstance(until, (int, float)):
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} is in the past (now={self._now})"
                )
        else:
            raise SimulationError(f"invalid until argument: {until!r}")

        self._running = True
        try:
            while self._has_pending():
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    return None
                try:
                    self.step()
                except StopSimulation as stop:
                    event = stop.value
                    assert isinstance(event, Event)
                    if not event._ok:
                        raise event._value  # type: ignore[misc]
                    return event._value
        finally:
            self._running = False

        if watched is not None and not watched.triggered:
            raise SimulationError(
                "run(until=event) ended with the event never triggering "
                "(deadlock or missing stimulus)"
            )
        if stop_at is not None:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        raise StopSimulation(event)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.6g} pending={len(self._queue)}>"
