"""Columnar batched event core: the engine's vectorized hot path.

:class:`ColumnarEngine` is a drop-in :class:`~repro.sim.engine.Engine`
replacement that stores future events as **NumPy columns** (due-time,
priority, sequence number) instead of a binary heap of tuples, and
dispatches whole *timestamp frontiers* at once:

* New events land in a small *tail* heap (O(log tail) push, O(1) min).
  When the tail grows past a threshold it is ``lexsort``-ed by
  ``(time, priority, seq)`` into an immutable sorted *run* of NumPy
  arrays; runs are periodically merged so lookups stay cheap — the
  classic LSM / ladder-queue arrangement, here with columnar storage.
* :meth:`step` extracts **every** event due at the next time frontier in
  one batched ``searchsorted`` slice per run and drains them through a
  tiny per-frontier heap ordered by ``(priority, seq)`` — one clock
  comparison per *frontier* instead of one heap pop per *event*.
* Because rows are columns rather than heap entries, cancellation is a
  set insertion: :meth:`cancel` makes the bulk fast paths in the
  hardware layer possible (a whole-message network transfer or a
  re-timed ``run_cycles`` quantum schedules *one* completion event and
  cancels it on preemption, instead of racing an ``AnyOf`` per chunk).

**Oracle contract** (enforced by hypothesis tests in
``tests/sim/test_columnar_engine.py``): for any program, the columnar
core processes the exact same events, in the exact same order, at the
exact same ``float`` clock values as the scalar :class:`Engine` — both
order by ``(time, priority, insertion-seq)``, and the frontier batching
is invisible to simulation code.  The scalar walk stays intact as the
property-test oracle, exactly as ``PowerSeries`` kept ``_energy_walk``.
"""

from __future__ import annotations

import heapq
from typing import List, Set, Tuple

import numpy as np

from repro.sim.engine import Engine, PRIORITY_NORMAL
from repro.sim.errors import SimulationError
from repro.sim.events import Event

__all__ = ["ColumnarEngine", "EngineStats"]

_INF = float("inf")

#: Tail pushes before a lexsort flush into a sorted run.  Small enough
#: that tail heap operations stay cache-friendly, large enough to
#: amortise the sort.
_TAIL_LIMIT = 64

#: Sorted runs kept before merging them into one (bounds the per-frontier
#: min-of-heads scan).
_MAX_RUNS = 8


class EngineStats:
    """Counters the columnar core maintains (cheap ints, always on)."""

    __slots__ = (
        "frontiers",
        "dispatched",
        "cancelled",
        "flushes",
        "merges",
        "max_frontier",
    )

    def __init__(self) -> None:
        self.frontiers = 0  #: timestamp batches extracted
        self.dispatched = 0  #: events actually processed
        self.cancelled = 0  #: events revoked before dispatch
        self.flushes = 0  #: tail → sorted-run conversions
        self.merges = 0  #: run compactions
        self.max_frontier = 0  #: largest simultaneous batch seen

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<EngineStats {body}>"


class _Run:
    """An immutable sorted slab of future events (columns + cursor)."""

    __slots__ = ("when", "prio", "seq", "events", "cursor")

    def __init__(
        self,
        when: np.ndarray,
        prio: np.ndarray,
        seq: np.ndarray,
        events: List[Event],
    ):
        self.when = when
        self.prio = prio
        self.seq = seq
        self.events = events
        self.cursor = 0

    def __len__(self) -> int:
        return len(self.events) - self.cursor

    def head_time(self) -> float:
        if self.cursor >= len(self.events):
            return _INF
        return self.when[self.cursor]

    def extract_at(
        self,
        t: float,
        out: List[Tuple[int, int, Event]],
        cancelled: Set[Event],
    ) -> None:
        """Append every live ``(prio, seq, event)`` row due exactly at ``t``."""
        cursor = self.cursor
        if cursor >= len(self.events) or self.when[cursor] != t:
            return
        end = int(np.searchsorted(self.when, t, side="right"))
        prios = self.prio[cursor:end].tolist()
        seqs = self.seq[cursor:end].tolist()
        evs = self.events[cursor:end]
        self.cursor = end
        if cancelled:
            for row in zip(prios, seqs, evs):
                if row[2] in cancelled:
                    cancelled.discard(row[2])
                else:
                    out.append(row)
        else:
            out.extend(zip(prios, seqs, evs))


def _sorted_run(
    when: np.ndarray, prio: np.ndarray, seq: np.ndarray, events: List[Event]
) -> _Run:
    order = np.lexsort((seq, prio, when))
    return _Run(
        when[order], prio[order], seq[order], [events[i] for i in order]
    )


class ColumnarEngine(Engine):
    """Batched-frontier engine on columnar storage (see module docstring).

    Identical public semantics to :class:`Engine`, plus:

    * :meth:`cancel` — O(1) revocation of a scheduled event;
    * :meth:`schedule_at` / :meth:`timeout_at` — absolute-time
      scheduling, which the bulk fast paths use to land completions on
      the *exact* float instants the scalar per-chunk walk would have
      produced;
    * :attr:`stats` — always-on frontier/dispatch/cancel counters.
    """

    columnar = True
    supports_cancel = True

    def __init__(self, start_time: float = 0.0, strict: bool = True):
        super().__init__(start_time, strict)
        # Current frontier: a tiny heap of (priority, seq, event) all due
        # at _batch_time.  Only meaningful while non-empty.
        self._batch: List[Tuple[int, int, Event]] = []
        self._batch_time: float = self._now
        # Future store: sorted columnar runs + a small tail heap of
        # (when, prio, seq, event) rows awaiting a lexsort flush.  seq is
        # unique, so heap comparisons never reach the Event itself.
        self._runs: List[_Run] = []
        self._tail: List[Tuple[float, int, int, Event]] = []
        # Cancelled-but-still-stored events, skipped lazily at dispatch.
        self._cancelled: Set[Event] = set()
        self._n_alive = 0
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # queue primitives (overrides)
    # ------------------------------------------------------------------
    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Queue ``event`` for processing ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"cannot schedule into the past or with a non-finite "
                f"delay (delay={delay})"
            )
        self._enqueue(self._now + delay, priority, event)

    def schedule_at(
        self,
        event: Event,
        when: float,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Queue ``event`` for processing at absolute time ``when``.

        Unlike ``schedule(delay=when - now)`` this does not round-trip
        through a subtraction, so a caller that *computed* an exact float
        instant (e.g. a chunk boundary replayed from the scalar walk)
        gets the event dispatched at exactly that float.
        """
        if not self._now <= when < _INF:
            raise SimulationError(
                f"cannot schedule at {when!r} (now={self._now}, "
                f"non-finite and past instants are rejected)"
            )
        self._enqueue(when, priority, event)

    def timeout_at(self, when: float, value: object = None) -> Event:
        """An event that fires at absolute time ``when`` (cancellable)."""
        event = Event(self)
        event._ok = True
        event._value = value
        self.schedule_at(event, when)
        return event

    def cancel(self, event: Event) -> bool:
        """Revoke a scheduled-but-unprocessed event in O(1).

        Returns ``True`` when the event was live and is now cancelled.
        The event object stays *triggered* (it carries its value) but its
        callbacks will never run.  Only events currently in the queue may
        be cancelled — that is the only state in which the fast paths
        call this.
        """
        if event.callbacks is None or not event.triggered:
            return False
        if event in self._cancelled:
            return False
        self._cancelled.add(event)
        self._n_alive -= 1
        self.stats.cancelled += 1
        return True

    def _enqueue(self, when: float, priority: int, event: Event) -> None:
        seq = next(self._eid)
        self._n_alive += 1
        if self._batch and when == self._batch_time:
            # Joins the live frontier: dispatch order within a frontier is
            # (priority, seq), exactly the scalar heap's tie-break.
            heapq.heappush(self._batch, (priority, seq, event))
            return
        heapq.heappush(self._tail, (when, priority, seq, event))
        if len(self._tail) >= _TAIL_LIMIT:
            self._flush_tail()

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none."""
        if self._cancelled:
            self._purge()
        if self._batch:
            return self._batch_time
        t = self._tail[0][0] if self._tail else _INF
        for run in self._runs:
            ht = run.head_time()
            if ht < t:
                t = ht
        return float(t)

    def _has_pending(self) -> bool:
        return self._n_alive > 0

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        cancelled = self._cancelled
        while True:
            batch = self._batch
            while batch:
                prio, seq, event = heapq.heappop(batch)
                if cancelled and event in cancelled:
                    cancelled.discard(event)
                    continue
                self._now = self._batch_time
                self._n_alive -= 1
                self.stats.dispatched += 1
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is None:  # pragma: no cover - defensive
                    raise SimulationError(f"{event!r} processed twice")
                for callback in callbacks:
                    callback(event)
                return
            if not self._refill_batch():
                raise SimulationError("step() on an empty event queue")

    # ------------------------------------------------------------------
    # columnar internals
    # ------------------------------------------------------------------
    def _refill_batch(self) -> bool:
        """Extract the next timestamp frontier into the batch heap."""
        if self._cancelled:
            self._purge()
        tail = self._tail
        t = tail[0][0] if tail else _INF
        for run in self._runs:
            ht = run.head_time()
            if ht < t:
                t = ht
        if t == _INF:
            return False
        t = float(t)
        entries: List[Tuple[int, int, Event]] = []
        if tail and tail[0][0] == t:
            self._extract_tail_at(t, entries)
        if self._runs:
            for run in self._runs:
                run.extract_at(t, entries, self._cancelled)
            self._runs = [run for run in self._runs if len(run)]
        heapq.heapify(entries)
        self._batch = entries
        self._batch_time = t
        self.stats.frontiers += 1
        if len(entries) > self.stats.max_frontier:
            self.stats.max_frontier = len(entries)
        return True

    def _extract_tail_at(
        self, t: float, out: List[Tuple[int, int, Event]]
    ) -> None:
        tail = self._tail
        while tail and tail[0][0] == t:
            _, prio, seq, event = heapq.heappop(tail)
            out.append((prio, seq, event))

    def _flush_tail(self) -> None:
        tail = self._tail
        when = np.fromiter(
            (row[0] for row in tail), dtype=np.float64, count=len(tail)
        )
        prio = np.fromiter(
            (row[1] for row in tail), dtype=np.int64, count=len(tail)
        )
        seq = np.fromiter(
            (row[2] for row in tail), dtype=np.int64, count=len(tail)
        )
        events = [row[3] for row in tail]
        self._runs.append(_sorted_run(when, prio, seq, events))
        self._tail = []
        self.stats.flushes += 1
        if len(self._runs) >= _MAX_RUNS:
            self._merge_runs()

    def _merge_runs(self) -> None:
        whens = np.concatenate([run.when[run.cursor :] for run in self._runs])
        prios = np.concatenate([run.prio[run.cursor :] for run in self._runs])
        seqs = np.concatenate([run.seq[run.cursor :] for run in self._runs])
        events: List[Event] = []
        for run in self._runs:
            events.extend(run.events[run.cursor :])
        cancelled = self._cancelled
        if cancelled:
            keep = [i for i, ev in enumerate(events) if ev not in cancelled]
            if len(keep) != len(events):
                for ev in events:
                    cancelled.discard(ev)
                idx = np.asarray(keep, dtype=np.int64)
                whens, prios, seqs = whens[idx], prios[idx], seqs[idx]
                events = [events[i] for i in keep]
        self._runs = (
            [_sorted_run(whens, prios, seqs, events)] if events else []
        )
        self.stats.merges += 1

    def _purge(self) -> None:
        """Physically drop cancelled rows wherever they sit at a head.

        Keeps :meth:`peek` honest: a cancelled event must never determine
        the next frontier time, or ``run(until=t)`` could overshoot.
        """
        cancelled = self._cancelled
        batch = self._batch
        while batch and batch[0][2] in cancelled:
            cancelled.discard(heapq.heappop(batch)[2])
        live_runs: List[_Run] = []
        for run in self._runs:
            events = run.events
            n = len(events)
            cursor = run.cursor
            while cursor < n and events[cursor] in cancelled:
                cancelled.discard(events[cursor])
                cursor += 1
            run.cursor = cursor
            if cursor < n:
                live_runs.append(run)
        self._runs = live_runs
        tail = self._tail
        while tail and tail[0][3] in cancelled:
            cancelled.discard(heapq.heappop(tail)[3])

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (scheduled, uncancelled) events."""
        return self._n_alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ColumnarEngine t={self._now:.6g} pending={self._n_alive} "
            f"frontiers={self.stats.frontiers}>"
        )
