"""NAS EP (Embarrassingly Parallel) — extension workload.

The paper evaluates FT and the transpose; EP is the *opposite* corner of
the NPB suite: pure register/L1-resident computation (Marsaglia polar
Gaussian-pair generation) with a single tiny reduction at the end.  It
completes the strategy-space picture — on EP, DVS behaves like the
paper's CPU-bound microbenchmark (Fig 7): big slowdowns, no savings.

Verification mode runs the actual algorithm (an LCG stream partitioned by
rank; annulus counts reduced across ranks) and checks that the distributed
counts equal a single-pass reference — the partition-independence
invariant real EP validates with its published sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dvs.controller import DvsController
from repro.hardware.memory import AccessCost
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["EPClass", "EP_CLASSES", "NasEP", "verify_ep"]


@dataclass(frozen=True)
class EPClass:
    """One EP problem class (log2 of the pair count)."""

    name: str
    log2_pairs: int

    @property
    def pairs(self) -> int:
        return 1 << self.log2_pairs


EP_CLASSES: Dict[str, EPClass] = {
    "S": EPClass("S", 24),
    "W": EPClass("W", 25),
    "A": EPClass("A", 28),
    "B": EPClass("B", 30),
    "C": EPClass("C", 32),
}

# LCG parameters (multiplicative congruential, modulus 2^31-1 variant —
# a simplified but deterministic stand-in for NPB's 2^46 generator).
_LCG_A = 16807
_LCG_M = 2**31 - 1


def _lcg_block(seed: int, count: int) -> np.ndarray:
    """``count`` uniform (0,1) values starting from ``seed`` (exclusive)."""
    out = np.empty(count, dtype=np.float64)
    x = seed
    for i in range(count):
        x = (x * _LCG_A) % _LCG_M
        out[i] = x / _LCG_M
    return out


def _advance(seed: int, steps: int) -> int:
    """Jump the LCG ``steps`` ahead in O(log steps)."""
    return (seed * pow(_LCG_A, steps, _LCG_M)) % _LCG_M


class NasEP(Workload):
    """EP on ``n_ranks`` ranks.

    Parameters
    ----------
    problem_class:
        NPB class letter; ``pairs_override`` substitutes an explicit pair
        count (verification uses small counts).
    cycles_per_pair:
        Computation cost per generated pair (sqrt/log via library calls
        on the Pentium M).
    chunks:
        Work is sliced so governors can observe the run in progress.
    """

    def __init__(
        self,
        problem_class: str = "S",
        n_ranks: int = 8,
        verify: bool = False,
        pairs_override: Optional[int] = None,
        cycles_per_pair: float = 60.0,
        chunks: int = 50,
    ):
        if problem_class not in EP_CLASSES:
            raise ValueError(
                f"unknown EP class {problem_class!r}; pick from {sorted(EP_CLASSES)}"
            )
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.problem = EP_CLASSES[problem_class]
        self.pairs = (
            int(pairs_override) if pairs_override is not None else self.problem.pairs
        )
        if self.pairs % n_ranks:
            raise ValueError(
                f"pair count {self.pairs} must divide evenly over {n_ranks} ranks"
            )
        if verify and self.pairs > 1 << 18:
            raise ValueError(
                "verification mode is limited to 2^18 pairs; pass "
                "pairs_override to shrink the problem"
            )
        self.n_ranks = n_ranks
        self.verify = verify
        self.cycles_per_pair = cycles_per_pair
        self.chunks = max(1, chunks)
        self.name = f"ep.{self.problem.name}"

    # ------------------------------------------------------------------
    @property
    def local_pairs(self) -> int:
        return self.pairs // self.n_ranks

    def compute_cost(self) -> AccessCost:
        """This rank's full generation cost (register/L1 resident)."""
        return AccessCost(
            cpu_cycles=self.local_pairs * self.cycles_per_pair, stall_seconds=0.0
        )

    def _count_annuli(self, rank: int) -> np.ndarray:
        """Real computation: Gaussian-pair annulus counts for this rank."""
        seed = _advance(271_828_183 % _LCG_M, rank * 2 * self.local_pairs)
        values = _lcg_block(seed, 2 * self.local_pairs)
        x = 2.0 * values[0::2] - 1.0
        y = 2.0 * values[1::2] - 1.0
        t = x * x + y * y
        accepted = t[(t > 0.0) & (t <= 1.0)]
        # Marsaglia transform magnitude, binned into 10 annuli as NPB does.
        gauss = np.sqrt(-2.0 * np.log(accepted) / accepted)
        mags = np.concatenate([np.abs(x[(t > 0) & (t <= 1)] * gauss),
                               np.abs(y[(t > 0) & (t <= 1)] * gauss)])
        counts, _ = np.histogram(mags, bins=10, range=(0.0, 10.0))
        return counts.astype(np.int64)

    # ------------------------------------------------------------------
    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        per_chunk = self.compute_cost().scaled(1.0 / self.chunks)
        for _ in range(self.chunks):
            yield from execute_cost(comm, per_chunk)
        counts = self._count_annuli(comm.rank) if self.verify else None
        total = yield from comm.allreduce(counts, nbytes=80)
        return total


def verify_ep(workload: NasEP, returns: List[object]) -> None:
    """Distributed counts must equal a single-pass reference."""
    if not workload.verify:
        raise ValueError("verification requires verify=True mode")
    reference = NasEP(
        workload.problem.name,
        n_ranks=1,
        verify=True,
        pairs_override=workload.pairs,
    )._count_annuli(0)
    for counts in returns:
        np.testing.assert_array_equal(counts, reference)
