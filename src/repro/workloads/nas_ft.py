"""NAS Parallel Benchmark FT: distributed 3-D FFT (paper §4).

FT repeatedly evolves a 3-D array in spectral space: each iteration is a
point-wise *evolve* multiply followed by an inverse 3-D FFT and a
checksum.  With the NPB slab decomposition, the FFT is two local 1-D FFT
sweeps, a global transpose (all-to-all — the all-to-all information
exchange the paper calls out), and a third local sweep.

Two modes share one code path:

* **verification mode** (small grids): real complex slabs move through
  the simulated MPI and the result is checked against ``numpy.fft`` by
  :func:`verify_distributed_fft`;
* **synthetic mode** (classes A/B/C): the same message pattern and cost
  accounting with byte counts only, so full problem classes run without
  gigabytes of memory.

The slack-heavy ``fft()`` region (local sweeps + transpose) is marked for
the dynamic DVS strategy, matching the paper's instrumentation point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dvs.controller import DvsController
from repro.hardware.memory import AccessCost
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["FTClass", "FT_CLASSES", "NasFT", "verify_distributed_fft"]

COMPLEX_BYTES = 16  #: double-precision complex


@dataclass(frozen=True)
class FTClass:
    """One NPB problem class."""

    name: str
    nx: int
    ny: int
    nz: int
    iterations: int

    @property
    def total_points(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def total_bytes(self) -> int:
        return self.total_points * COMPLEX_BYTES


#: The NPB 2.x FT problem classes (S/W used for verification runs).
FT_CLASSES: Dict[str, FTClass] = {
    "S": FTClass("S", 64, 64, 64, 6),
    "W": FTClass("W", 128, 128, 32, 6),
    "A": FTClass("A", 256, 256, 128, 6),
    "B": FTClass("B", 512, 256, 256, 20),
    "C": FTClass("C", 512, 512, 512, 20),
}


class NasFT(Workload):
    """The FT benchmark on ``n_ranks`` ranks (slab decomposition over z).

    Parameters
    ----------
    problem_class:
        One of ``"S" "W" "A" "B" "C"``.
    n_ranks:
        Must divide both ``nz`` (initial slabs) and ``nx`` (post-transpose
        pencils), as in NPB.
    verify:
        Move and transform real data (small classes only).
    cycles_per_flop:
        FFT butterfly cost on the Pentium M (no SIMD FFT in 2005-era
        Fortran: ~1 cycle per flop through the pipeline).
    fft_passes_over_data:
        Cache-resident blocking still streams the slab from DRAM a few
        times per 1-D sweep group; scales the memory-stall share of the
        local FFTs (the reason FT's compute is only mildly
        frequency-sensitive on this platform).
    """

    def __init__(
        self,
        problem_class: str = "S",
        n_ranks: int = 8,
        verify: bool = False,
        cycles_per_flop: float = 0.7,
        fft_passes_over_data: float = 3.0,
        evolve_cycles_per_point: float = 4.0,
        iterations: Optional[int] = None,
    ):
        if problem_class not in FT_CLASSES:
            raise ValueError(
                f"unknown FT class {problem_class!r}; pick from {sorted(FT_CLASSES)}"
            )
        self.problem = FT_CLASSES[problem_class]
        if iterations is not None:
            if iterations < 1:
                raise ValueError(f"iterations must be >= 1, got {iterations}")
            # Scaled-down iteration counts keep experiment wall time sane;
            # normalized E/D crescendos are iteration-count invariant to
            # first order (each iteration is statistically identical).
            self.problem = FTClass(
                self.problem.name,
                self.problem.nx,
                self.problem.ny,
                self.problem.nz,
                iterations,
            )
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        if self.problem.nz % n_ranks or self.problem.nx % n_ranks:
            raise ValueError(
                f"n_ranks={n_ranks} must divide nz={self.problem.nz} and "
                f"nx={self.problem.nx}"
            )
        if verify and self.problem.total_bytes > 64 << 20:
            raise ValueError(
                f"class {self.problem.name} is too large for verification "
                "mode; use synthetic mode"
            )
        self.n_ranks = n_ranks
        self.verify = verify
        self.cycles_per_flop = cycles_per_flop
        self.fft_passes_over_data = fft_passes_over_data
        self.evolve_cycles_per_point = evolve_cycles_per_point
        self.name = f"ft.{self.problem.name}"

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    @property
    def local_points(self) -> int:
        return self.problem.total_points // self.n_ranks

    @property
    def local_bytes(self) -> int:
        return self.local_points * COMPLEX_BYTES

    def fft_local_cost(self) -> AccessCost:
        """One rank's share of the three 1-D FFT sweeps of one 3-D FFT."""
        n = self.problem.total_points
        flops_total = 5.0 * n * np.log2(n)
        cycles = flops_total / self.n_ranks * self.cycles_per_flop
        stall = self.fft_passes_over_data * self.local_bytes / 1.0e9
        # Use the node's DRAM bandwidth at run time instead of 1 GB/s?  The
        # default hierarchy streams at 1 GB/s; keep the constant local so
        # the cost model is inspectable.
        return AccessCost(cpu_cycles=cycles, stall_seconds=stall)

    def evolve_cost(self) -> AccessCost:
        """Point-wise evolve multiply over the local slab."""
        cycles = self.evolve_cycles_per_point * self.local_points
        stall = 2.0 * self.local_bytes / 1.0e9  # read + write stream
        return AccessCost(cpu_cycles=cycles, stall_seconds=stall)

    @property
    def alltoall_block_bytes(self) -> int:
        """Bytes each rank sends to each peer in the transpose."""
        return self.local_bytes // self.n_ranks

    # ------------------------------------------------------------------
    # program
    # ------------------------------------------------------------------
    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        # As in NPB FT, the spectral array U keeps its (z-slab) layout for
        # the whole run; every iteration evolves a fresh copy of it and
        # transforms that copy, so each iteration's FFT starts from the
        # same decomposition.
        spectral = self._initial_slab(comm.rank) if self.verify else None

        checksums: List[complex] = []
        transformed = None
        for it in range(1, self.problem.iterations + 1):
            # evolve: point-wise multiply, outside the marked region
            work = spectral * np.exp(0.5j * it) if spectral is not None else None
            yield from execute_cost(comm, self.evolve_cost())

            # fft(): local sweeps + global transpose — the slack region
            yield from dvs.region_enter("fft")
            transformed = yield from self._fft3d(comm, work)
            yield from dvs.region_exit("fft")

            # checksum: tiny allreduce
            local_sum = complex(transformed.sum()) if transformed is not None else 0j
            total = yield from comm.allreduce(local_sum)
            checksums.append(total)
        return {"checksums": checksums, "data": transformed}

    def _fft3d(self, comm, data: Optional[np.ndarray]) -> WorkGen:
        """One distributed 3-D FFT (sweeps + transpose)."""
        # Local 1-D sweeps over x and y (two thirds of the local work).
        local = self.fft_local_cost()
        yield from execute_cost(comm, local.scaled(2.0 / 3.0))
        if data is not None:
            data = np.fft.fft(data, axis=2)
            data = np.fft.fft(data, axis=1)

        # Global transpose: all-to-all of the slab, split along x.
        if data is not None:
            chunks = np.array_split(data, self.n_ranks, axis=2)
            received = yield from comm.alltoall([np.ascontiguousarray(c) for c in chunks])
            data = np.concatenate(received, axis=0)
        else:
            yield from comm.alltoall(nbytes_each=self.alltoall_block_bytes)

        # Final sweep over z (now fully local).
        yield from execute_cost(comm, local.scaled(1.0 / 3.0))
        if data is not None:
            data = np.fft.fft(data, axis=0)
        return data

    # ------------------------------------------------------------------
    # verification support
    # ------------------------------------------------------------------
    def _initial_slab(self, rank: int) -> np.ndarray:
        """Deterministic complex slab for this rank (z-distributed)."""
        p = self.problem
        nz_local = p.nz // self.n_ranks
        z0 = rank * nz_local
        z = np.arange(z0, z0 + nz_local)[:, None, None]
        y = np.arange(p.ny)[None, :, None]
        x = np.arange(p.nx)[None, None, :]
        # A smooth deterministic field (cheap, no RNG state to thread).
        return np.exp(1j * (0.01 * x + 0.02 * y + 0.03 * z)).astype(np.complex128)

    def reference_result(self, iteration: Optional[int] = None) -> np.ndarray:
        """numpy ground truth: ``fftn(U · exp(0.5j·iteration))``."""
        it = self.problem.iterations if iteration is None else iteration
        full = np.concatenate(
            [self._initial_slab(r) for r in range(self.n_ranks)], axis=0
        )
        return np.fft.fftn(full * np.exp(0.5j * it))


def verify_distributed_fft(workload: NasFT, returns: List[dict]) -> None:
    """Check the distributed result against ``numpy.fft.fftn``.

    ``returns`` is the SPMD result list; each rank holds an x-distributed
    pencil of the final iteration's transform.  Also checks that every
    iteration's checksum matches the reference (checksums are global, so
    a single corrupted exchange anywhere in the run shows up).  Raises
    ``AssertionError`` on mismatch.
    """
    if not workload.verify:
        raise ValueError("verification requires verify=True mode")
    p = workload.problem
    full = workload.reference_result()
    nx_local = p.nx // workload.n_ranks
    for rank, result in enumerate(returns):
        pencil = result["data"]
        expected = full[:, :, rank * nx_local : (rank + 1) * nx_local]
        np.testing.assert_allclose(pencil, expected, rtol=1e-9, atol=1e-6)
    for it in range(1, p.iterations + 1):
        expected_sum = complex(workload.reference_result(it).sum())
        for result in returns:
            measured = result["checksums"][it - 1]
            np.testing.assert_allclose(
                measured, expected_sum, rtol=1e-9, atol=1e-6
            )
