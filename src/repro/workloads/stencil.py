"""Halo-exchange Jacobi stencil — extension workload.

A 2-D five-point Jacobi iteration with 1-D row decomposition: each sweep
streams the local panel (memory-bound compute) and exchanges one halo row
with each neighbour (latency-bound communication), with a residual
allreduce every ``residual_every`` sweeps.  This is the canonical
"regular scientific code" pattern between the paper's two extremes: more
balanced than FT (which is communication-dominated on 100 Mb Ethernet)
and than EP (pure compute), so its crescendo — and hence its best DVS
operating point — falls in between.

Verification mode runs the real numpy Jacobi update and checks the
distributed field against a single-array reference sweep-for-sweep.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dvs.controller import DvsController
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["HaloStencil", "verify_stencil"]

TAG_UP = 301
TAG_DOWN = 302
FLOAT_BYTES = 8


class HaloStencil(Workload):
    """Jacobi sweeps on an ``n × n`` grid across ``n_ranks`` row panels."""

    def __init__(
        self,
        n: int = 4096,
        n_ranks: int = 8,
        sweeps: int = 20,
        residual_every: int = 5,
        verify: bool = False,
        flops_per_point: float = 6.0,
    ):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        if n % n_ranks:
            raise ValueError(f"n={n} must divide over {n_ranks} ranks")
        if sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {sweeps}")
        if residual_every < 1:
            raise ValueError(f"residual_every must be >= 1, got {residual_every}")
        if verify and n * n * FLOAT_BYTES > 64 << 20:
            raise ValueError("grid too large for verification mode")
        self.n = n
        self.n_ranks = n_ranks
        self.sweeps = sweeps
        self.residual_every = residual_every
        self.verify = verify
        self.flops_per_point = flops_per_point
        self.name = f"stencil.{n}x{n}"

    # ------------------------------------------------------------------
    @property
    def rows_local(self) -> int:
        return self.n // self.n_ranks

    @property
    def halo_bytes(self) -> int:
        return self.n * FLOAT_BYTES

    def sweep_cost(self, memory) -> "AccessCost":
        """One local panel update: stream two arrays + stencil flops."""
        panel_bytes = self.rows_local * self.n * FLOAT_BYTES
        stream = memory.stream_copy_cost(2 * panel_bytes)
        flops = memory.register_loop_cost(
            int(self.rows_local * self.n * self.flops_per_point)
        )
        return stream + flops

    # ------------------------------------------------------------------
    def _initial_panel(self, rank: int) -> np.ndarray:
        r0 = rank * self.rows_local
        rows = np.arange(r0, r0 + self.rows_local, dtype=np.float64)[:, None]
        cols = np.arange(self.n, dtype=np.float64)[None, :]
        return np.sin(0.01 * rows) + np.cos(0.02 * cols)

    @staticmethod
    def _jacobi_interior(padded: np.ndarray) -> np.ndarray:
        """Five-point average of the padded panel's interior."""
        return 0.25 * (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
        )

    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        rank, size = comm.rank, comm.size
        up = rank - 1 if rank > 0 else None
        down = rank + 1 if rank < size - 1 else None
        panel = self._initial_panel(rank) if self.verify else None
        cost = self.sweep_cost(comm.memory)

        residuals: List[float] = []
        for sweep in range(self.sweeps):
            # --- halo exchange (marked as the slack region) -------------
            yield from dvs.region_enter("halo")
            top = bottom = None
            reqs = []
            if up is not None:
                reqs.append(comm.irecv(source=up, tag=TAG_DOWN))
                sreq = yield from comm.isend(
                    panel[0] if panel is not None else None,
                    dest=up,
                    tag=TAG_UP,
                    nbytes=None if self.verify else self.halo_bytes,
                )
                reqs.append(sreq)
            if down is not None:
                reqs.append(comm.irecv(source=down, tag=TAG_UP))
                sreq = yield from comm.isend(
                    panel[-1] if panel is not None else None,
                    dest=down,
                    tag=TAG_DOWN,
                    nbytes=None if self.verify else self.halo_bytes,
                )
                reqs.append(sreq)
            values = yield from comm.waitall(reqs)
            if panel is not None:
                it = iter(values)
                if up is not None:
                    top = next(it)
                    next(it)  # send completion
                if down is not None:
                    bottom = next(it)
            yield from dvs.region_exit("halo")

            # --- local sweep ---------------------------------------------
            yield from execute_cost(comm, cost)
            if panel is not None:
                padded = np.zeros((self.rows_local + 2, self.n + 2))
                padded[1:-1, 1:-1] = panel
                padded[0, 1:-1] = top if top is not None else 0.0
                padded[-1, 1:-1] = bottom if bottom is not None else 0.0
                new_panel = self._jacobi_interior(padded)
                diff = float(np.abs(new_panel - panel).sum())
                panel = new_panel
            else:
                diff = 0.0

            # --- periodic residual allreduce -------------------------------
            if (sweep + 1) % self.residual_every == 0:
                total = yield from comm.allreduce(diff, nbytes=8)
                residuals.append(total)
        return {"panel": panel, "residuals": residuals}

    # ------------------------------------------------------------------
    def reference_field(self) -> np.ndarray:
        """Single-array reference of the full grid after all sweeps."""
        field = np.concatenate(
            [self._initial_panel(r) for r in range(self.n_ranks)], axis=0
        )
        for _ in range(self.sweeps):
            padded = np.zeros((self.n + 2, self.n + 2))
            padded[1:-1, 1:-1] = field
            field = self._jacobi_interior(padded)
        return field


def verify_stencil(workload: HaloStencil, returns: List[dict]) -> None:
    """Distributed panels must tile the single-array reference exactly."""
    if not workload.verify:
        raise ValueError("verification requires verify=True mode")
    reference = workload.reference_field()
    rows = workload.rows_local
    for rank, result in enumerate(returns):
        panel = result["panel"]
        expected = reference[rank * rows : (rank + 1) * rows]
        np.testing.assert_allclose(panel, expected, rtol=1e-12, atol=1e-12)
