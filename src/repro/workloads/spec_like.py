"""Sequential SPEC-CFP2000-like kernels (paper Figure 1, Table 1).

The paper motivates weighted ED²P with two single-node codes:

* **mgrid** — a multigrid solver whose working set is substantially
  cache-resident: delay balloons as frequency drops, energy barely moves
  (Fig 1a), so the HPC-best point stays at 1.4 GHz (Table 1);
* **swim** — a shallow-water stencil streaming large arrays from DRAM:
  delay is nearly flat, energy falls steadily (Fig 1b), so the HPC-best
  point drops to 1.0 GHz.

We model both as iterated kernels with an explicit cycles/stall split
derived from their array sizes through the memory model, and provide tiny
*real* numpy reference steps so tests can sanity-check that the modelled
access pattern matches an actual implementation of the kernel.
"""

from __future__ import annotations

import numpy as np

from repro.dvs.controller import DvsController
from repro.hardware.memory import AccessCost, MemoryHierarchy
from repro.util.units import KIB, MIB
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["SequentialKernel", "MgridLike", "SwimLike"]


class SequentialKernel(Workload):
    """A single-rank kernel repeating a fixed per-iteration cost."""

    n_ranks = 1

    def __init__(self, iterations: int):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations

    def cost_per_iteration(self, memory: MemoryHierarchy) -> AccessCost:
        raise NotImplementedError

    def program(self, comm, dvs: DvsController) -> WorkGen:
        cost = self.cost_per_iteration(comm.memory)
        for _ in range(self.iterations):
            yield from execute_cost(comm, cost)
        return None


class MgridLike(SequentialKernel):
    """Multigrid V-cycles over a grid that mostly fits in L2.

    The fine grid streams from DRAM once per cycle, but the bulk of the
    stencil applications run out of L2/L1 — hence the CPU-bound crescendo.

    Parameters are per V-cycle: ``cache_resident_refs`` strided references
    that hit on-die cache, plus one streaming pass over ``grid_bytes``.
    """

    name = "mgrid-like"

    def __init__(
        self,
        iterations: int = 40,
        grid_bytes: int = 48 * MIB,
        cache_resident_refs: int = 12_000_000,
        stencil_flops_per_ref: float = 4.0,
    ):
        super().__init__(iterations)
        self.grid_bytes = grid_bytes
        self.cache_resident_refs = cache_resident_refs
        self.stencil_flops_per_ref = stencil_flops_per_ref

    def cost_per_iteration(self, memory: MemoryHierarchy) -> AccessCost:
        cached = memory.strided_walk_cost(
            min(memory.l2_bytes, 256 * KIB), memory.cache_line_bytes,
            self.cache_resident_refs,
        )
        flops = memory.register_loop_cost(
            int(self.cache_resident_refs * self.stencil_flops_per_ref)
        )
        stream = memory.stream_copy_cost(self.grid_bytes)
        return cached + flops + stream

    @staticmethod
    def reference_step(grid: np.ndarray) -> np.ndarray:
        """One real relaxation sweep (tests compare access behaviour)."""
        out = grid.copy()
        out[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        return out


class SwimLike(SequentialKernel):
    """Shallow-water stencil streaming several large arrays from DRAM.

    Working set far exceeds L2 (SPEC swim touches ~190 MB), so nearly
    every reference is a DRAM-bandwidth-limited stream with a modest
    arithmetic tail — the memory-bound crescendo.
    """

    name = "swim-like"

    def __init__(
        self,
        iterations: int = 40,
        array_bytes: int = 48 * MIB,
        n_arrays: int = 4,
        flops_per_point: float = 4.0,
    ):
        super().__init__(iterations)
        self.array_bytes = array_bytes
        self.n_arrays = n_arrays
        self.flops_per_point = flops_per_point

    def cost_per_iteration(self, memory: MemoryHierarchy) -> AccessCost:
        streamed = self.n_arrays * self.array_bytes
        stream = memory.stream_copy_cost(streamed)
        points = self.array_bytes // 8
        flops = memory.register_loop_cost(int(points * self.flops_per_point))
        return stream + flops

    @staticmethod
    def reference_step(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """One real shallow-water-ish update (tests only)."""
        return 0.5 * (np.roll(u, 1, axis=0) + np.roll(v, -1, axis=1))
