"""PowerPack microbenchmarks (paper §4, Figs 6-8).

The paper profiles the power behaviour of each subsystem in isolation:

* **memory-bound** — read/write a 32 MB buffer with 128 B stride: every
  reference misses to DRAM (Fig 6);
* **CPU-bound (L2)** — the same walk over a 256 KB buffer: every
  reference hits the on-die L2 (Fig 7);
* **CPU-bound (register)** — a register-resident arithmetic loop: the
  extreme case the paper quotes as 245 % slowdown at 600 MHz;
* **communication-bound** — MPI round trips: (a) 256 KB messages,
  (b) 4 KB messages gathered with a 64 B stride (an MPI vector type
  whose packing touches a 32 KB extent) (Fig 8).
"""

from __future__ import annotations

from repro.dvs.controller import DvsController
from repro.hardware.memory import AccessCost, MemoryHierarchy
from repro.util.units import KIB, MIB
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = [
    "MemoryBoundMicro",
    "L2BoundMicro",
    "RegisterMicro",
    "RoundtripMicro",
]

TAG_PING = 201
TAG_PONG = 202


class _WalkMicro(Workload):
    """Common machinery for the strided-walk benchmarks."""

    n_ranks = 1

    def __init__(
        self,
        buffer_bytes: int,
        stride_bytes: int,
        passes: int,
    ):
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.buffer_bytes = buffer_bytes
        self.stride_bytes = stride_bytes
        self.passes = passes

    @property
    def refs_per_pass(self) -> int:
        return self.buffer_bytes // self.stride_bytes

    def cost_per_pass(self, memory: MemoryHierarchy) -> AccessCost:
        return memory.strided_walk_cost(
            self.buffer_bytes, self.stride_bytes, self.refs_per_pass
        )

    def program(self, comm, dvs: DvsController) -> WorkGen:
        cost = self.cost_per_pass(comm.memory)
        for _ in range(self.passes):
            yield from execute_cost(comm, cost)
        return None


class MemoryBoundMicro(_WalkMicro):
    """32 MB buffer, 128 B stride: every reference pays DRAM latency."""

    name = "micro.membound"

    def __init__(self, passes: int = 200, buffer_bytes: int = 32 * MIB,
                 stride_bytes: int = 128):
        super().__init__(buffer_bytes, stride_bytes, passes)


class L2BoundMicro(_WalkMicro):
    """256 KB buffer, 128 B stride: on-die hits, pure cycle cost."""

    name = "micro.l2bound"

    def __init__(self, passes: int = 20_000, buffer_bytes: int = 256 * KIB,
                 stride_bytes: int = 128):
        super().__init__(buffer_bytes, stride_bytes, passes)


class RegisterMicro(Workload):
    """Register-resident arithmetic: delay is exactly ∝ 1/f."""

    name = "micro.register"
    n_ranks = 1

    def __init__(self, total_ops: int = 100_000_000_000, cycles_per_op: float = 1.0,
                 chunks: int = 100):
        if total_ops < 1 or chunks < 1:
            raise ValueError("total_ops and chunks must be positive")
        self.total_ops = total_ops
        self.cycles_per_op = cycles_per_op
        self.chunks = chunks

    def program(self, comm, dvs: DvsController) -> WorkGen:
        per_chunk = comm.memory.register_loop_cost(
            self.total_ops // self.chunks, self.cycles_per_op
        )
        for _ in range(self.chunks):
            yield from execute_cost(comm, per_chunk)
        return None


class RoundtripMicro(Workload):
    """Two-rank ping-pong (paper Fig 8).

    Parameters
    ----------
    message_bytes:
        Payload per leg (256 KB in Fig 8a, 4 KB in Fig 8b).
    round_trips:
        Number of ping-pong pairs.
    pack_stride_bytes:
        When set, the message is a strided MPI datatype: each leg first
        packs (and on receipt unpacks) ``message_bytes`` gathered with
        this stride, touching an extent of
        ``message_bytes * stride / element_size`` (Fig 8b: 64 B stride).
    """

    name = "micro.roundtrip"
    n_ranks = 2

    ELEMENT_BYTES = 8

    def __init__(
        self,
        message_bytes: int = 256 * KIB,
        round_trips: int = 1000,
        pack_stride_bytes: int = 0,
    ):
        if message_bytes < 0 or round_trips < 1:
            raise ValueError("invalid roundtrip parameters")
        self.message_bytes = message_bytes
        self.round_trips = round_trips
        self.pack_stride_bytes = pack_stride_bytes
        if pack_stride_bytes:
            self.name = f"micro.roundtrip.{message_bytes}B.stride{pack_stride_bytes}"
        else:
            self.name = f"micro.roundtrip.{message_bytes}B"

    def datatype(self) -> "VectorType | None":
        """The MPI vector type this message uses (None when contiguous)."""
        from repro.simmpi.datatypes import VectorType

        if not self.pack_stride_bytes:
            return None
        return VectorType(
            count=self.message_bytes // self.ELEMENT_BYTES,
            blocklength=1,
            stride=max(1, self.pack_stride_bytes // self.ELEMENT_BYTES),
            element_bytes=self.ELEMENT_BYTES,
        )

    def pack_cost(self, memory: MemoryHierarchy) -> AccessCost:
        """(Un)packing cost of one strided message, zero when contiguous."""
        vector = self.datatype()
        if vector is None:
            return AccessCost(0.0, 0.0)
        return vector.pack_cost(memory)

    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != 2:
            raise ValueError("roundtrip needs exactly 2 ranks")
        pack = self.pack_cost(comm.memory)
        other = 1 - comm.rank
        for _ in range(self.round_trips):
            if comm.rank == 0:
                yield from execute_cost(comm, pack)  # pack outgoing
                yield from comm.send(None, dest=other, tag=TAG_PING,
                                     nbytes=self.message_bytes)
                yield from comm.recv(source=other, tag=TAG_PONG)
                yield from execute_cost(comm, pack)  # unpack reply
            else:
                yield from comm.recv(source=other, tag=TAG_PING)
                yield from execute_cost(comm, pack)  # unpack incoming
                yield from execute_cost(comm, pack)  # pack reply
                yield from comm.send(None, dest=other, tag=TAG_PONG,
                                     nbytes=self.message_bytes)
        return None
