"""A slack-imbalanced SPMD workload (power-cap stress case).

:class:`SyntheticMix` gives every rank the same phase mix; real MPI jobs
rarely oblige.  :class:`ImbalancedMix` splits the ranks into a
compute-bound group (frequency-sensitive cycle work) and a slack-heavy
group (frequency-independent DRAM-paced work that finishes early and
then waits at the iteration barrier).  The waiters spin in the progress
engine, so ``/proc/stat`` reports *all* ranks ~100 % busy — exactly the
accounting blindness the paper's Fig 3 exposes — while the power
timelines tell the truth.

This is the workload where power-budget policies separate: a uniform cap
throttles the compute ranks on the critical path as hard as the waiting
ranks, stretching every iteration; slack-aware redistribution takes the
watts from the waiters (whose iterations are barrier-bound, not
clock-bound) and the job barely slows.
"""

from __future__ import annotations

from repro.dvs.controller import DvsController
from repro.hardware.activity import CpuActivity
from repro.workloads.base import Workload, WorkGen

__all__ = ["ImbalancedMix"]


class ImbalancedMix(Workload):
    """Compute-bound and slack-heavy ranks sharing an iteration barrier.

    Parameters
    ----------
    n_ranks:
        Total ranks; the first ``compute_ranks`` of them are
        compute-bound, the rest slack-heavy.
    compute_ranks:
        Size of the compute-bound group (default: half, rounded up).
    iteration_seconds:
        Critical-path length of one iteration at the fastest point
        (the compute group's cycle work).
    slack_fraction:
        The slack group's busy share of an iteration: it spends
        ``slack_fraction × iteration_seconds`` in DRAM-paced MEMSTALL
        work, then waits at the barrier.  Must be < 1 so the imbalance
        actually exists at full speed.
    iterations:
        Barrier-separated repetitions.
    """

    def __init__(
        self,
        n_ranks: int = 8,
        compute_ranks: int | None = None,
        iteration_seconds: float = 0.5,
        slack_fraction: float = 0.4,
        iterations: int = 4,
        peak_frequency: float = 1.4e9,
    ):
        if n_ranks < 2:
            raise ValueError(f"n_ranks must be >= 2, got {n_ranks}")
        resolved = (n_ranks + 1) // 2 if compute_ranks is None else compute_ranks
        if not 1 <= resolved < n_ranks:
            raise ValueError(
                f"compute_ranks must be in [1, {n_ranks - 1}], got {resolved}"
            )
        if not 0.0 < slack_fraction < 1.0:
            raise ValueError(
                f"slack_fraction must be in (0, 1), got {slack_fraction}"
            )
        if iterations < 1 or iteration_seconds <= 0:
            raise ValueError("iterations and iteration_seconds must be positive")
        self.n_ranks = n_ranks
        self.compute_ranks = resolved
        self.iteration_seconds = iteration_seconds
        self.slack_fraction = slack_fraction
        self.iterations = iterations
        self.peak_frequency = peak_frequency
        self.name = f"imbalanced.{resolved}c{n_ranks - resolved}s"

    # ------------------------------------------------------------------
    def is_compute_rank(self, rank: int) -> bool:
        return rank < self.compute_ranks

    @property
    def compute_cycles_per_iteration(self) -> float:
        return self.iteration_seconds * self.peak_frequency

    @property
    def slack_stall_seconds(self) -> float:
        return self.slack_fraction * self.iteration_seconds

    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        compute = self.is_compute_rank(comm.rank)
        for _ in range(self.iterations):
            if compute:
                yield from comm.cpu.run_cycles(
                    self.compute_cycles_per_iteration, state=CpuActivity.ACTIVE
                )
            else:
                yield from dvs.region_enter("slack")
                yield from comm.cpu.stall(
                    self.slack_stall_seconds, CpuActivity.MEMSTALL
                )
                yield from dvs.region_exit("slack")
            # Iteration barrier: waiters sit in the MPI wait policy
            # (spin, then kernel-block) until the compute group arrives.
            yield from comm.allreduce(1)
        return None
