"""Parallel matrix transpose with non-scattered (pure block) decomposition.

The paper's second application (§4, Fig 5): a 12K×12K matrix on 15
processors arranged as a 5×3 grid, each holding a 2400×4000 submatrix.
The block at grid position (p, q) is

1. transposed locally,
2. sent to the node holding position (q, p) of the transposed grid
   (diagonal blocks skip this step — the paper's example of load
   imbalance: "node (0,0) can skip step 2"), and
3. transmitted to the root processor for assembly.

Step 3 serialises 14 senders on the root's 100 Mb link: everyone else
sits backpressured (kernel-blocked, near-idle power) while one block
flows — the slack the paper exploits with DVS.  Steps 2 and 3 are marked
as dynamic-DVS regions, matching the paper's instrumentation.

Verification mode moves real numpy blocks and asserts the assembled
result equals ``A.T``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dvs.controller import DvsController
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["ParallelTranspose", "verify_transpose"]

FLOAT_BYTES = 8

TAG_EXCHANGE = 101
TAG_GATHER = 102


class ParallelTranspose(Workload):
    """Block matrix transpose on a ``grid_rows × grid_cols`` grid.

    Parameters
    ----------
    matrix_n:
        The (square) matrix dimension; the paper uses 12000.
    grid_rows, grid_cols:
        Process grid; the paper uses 5×3 = 15 ranks.
    verify:
        Move real float64 blocks (small sizes only).
    iterations:
        Whole-transpose repetitions (the paper iterates short codes so
        the battery's 15-20 s refresh can resolve them).
    """

    def __init__(
        self,
        matrix_n: int = 12_000,
        grid_rows: int = 5,
        grid_cols: int = 3,
        verify: bool = False,
        iterations: int = 1,
    ):
        if matrix_n % grid_rows or matrix_n % grid_cols:
            raise ValueError(
                f"matrix_n={matrix_n} must be divisible by the grid "
                f"({grid_rows}x{grid_cols})"
            )
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.matrix_n = matrix_n
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        self.iterations = iterations
        self.verify = verify
        self.n_ranks = grid_rows * grid_cols
        self.block_rows = matrix_n // grid_rows  # 2400 in the paper
        self.block_cols = matrix_n // grid_cols  # 4000 in the paper
        if verify and self.total_bytes > 64 << 20:
            raise ValueError("matrix too large for verification mode")
        self.name = f"transpose.{matrix_n}x{matrix_n}"

    # ------------------------------------------------------------------
    @property
    def block_bytes(self) -> int:
        return self.block_rows * self.block_cols * FLOAT_BYTES

    @property
    def total_bytes(self) -> int:
        return self.matrix_n * self.matrix_n * FLOAT_BYTES

    def position(self, rank: int) -> Tuple[int, int]:
        """Grid position (p, q) of ``rank`` (row-major)."""
        return divmod(rank, self.grid_cols)

    def rank_of(self, p: int, q: int) -> int:
        return p * self.grid_cols + q

    def send_peer(self, rank: int) -> Optional[int]:
        """Destination of this rank's transposed block, or ``None`` when
        the block stays put.

        The transposed matrix lives on the *transposed grid*
        (``grid_cols × grid_rows``, row-major over the same ranks), so the
        block of original position (p, q) — which is block (q, p) of the
        transposed matrix — goes to rank ``q * grid_rows + p``.  This
        mapping is a permutation of the ranks but *not* an involution on a
        non-square grid: the rank you send to is generally not the rank
        you receive from.
        """
        p, q = self.position(rank)
        peer = q * self.grid_rows + p
        return None if peer == rank else peer

    def recv_peer(self, rank: int) -> Optional[int]:
        """Source of the block this rank owns after the exchange
        (the inverse of :meth:`send_peer`), or ``None`` for fixed points.
        """
        # rank == q_s * grid_rows + p_s for the sender s = (p_s, q_s)
        q_s, p_s = divmod(rank, self.grid_rows)
        peer = self.rank_of(p_s, q_s)
        return None if peer == rank else peer

    def transposed_position(self, rank: int) -> Tuple[int, int]:
        """Position (u, v) this rank owns in the transposed-grid layout."""
        return divmod(rank, self.grid_rows)

    # ------------------------------------------------------------------
    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        rank = comm.rank
        root = 0
        assembled = None
        for it in range(self.iterations):
            # Per-iteration tags: without them a fast sender's next-round
            # gather message could match the root's ANY_SOURCE receive of
            # the previous round.
            tag_exchange = TAG_EXCHANGE + 2 * it
            tag_gather = TAG_GATHER + 2 * it
            block = self._initial_block(rank) if self.verify else None

            # --- step 1: local transpose (memory-bandwidth bound) ------
            if block is not None:
                block = np.ascontiguousarray(block.T)
            yield from execute_cost(
                comm, comm.memory.stream_copy_cost(2 * self.block_bytes)
            )

            # --- step 2: exchange along the grid-transpose permutation --
            yield from dvs.region_enter("step2")
            dest = self.send_peer(rank)
            src = self.recv_peer(rank)
            if dest is not None:
                assert src is not None  # fixed points coincide
                block = yield from comm.sendrecv(
                    block,
                    dest=dest,
                    source=src,
                    tag=tag_exchange,
                    nbytes=None if self.verify else self.block_bytes,
                )
            yield from dvs.region_exit("step2")

            # --- step 3: gather everything at the root ------------------
            yield from dvs.region_enter("step3")
            if rank == root:
                blocks: List[object] = [None] * self.n_ranks
                blocks[root] = block
                yield from execute_cost(
                    comm, comm.memory.stream_copy_cost(self.block_bytes)
                )
                for _ in range(self.n_ranks - 1):
                    req = comm.irecv(tag=tag_gather)
                    payload = yield from comm.wait(req)
                    src = req.status.source
                    blocks[src] = payload
                    # assembly memcpy into the full matrix
                    yield from execute_cost(
                        comm, comm.memory.stream_copy_cost(self.block_bytes)
                    )
                if self.verify:
                    assembled = self._assemble(blocks)
            else:
                yield from comm.send(
                    block,
                    dest=root,
                    tag=tag_gather,
                    nbytes=None if self.verify else self.block_bytes,
                )
            yield from dvs.region_exit("step3")
        return assembled

    # ------------------------------------------------------------------
    # verification support
    # ------------------------------------------------------------------
    def full_matrix(self) -> np.ndarray:
        """The deterministic global matrix A (verification mode)."""
        n = self.matrix_n
        return (
            np.arange(n, dtype=np.float64)[:, None] * n
            + np.arange(n, dtype=np.float64)[None, :]
        )

    def _initial_block(self, rank: int) -> np.ndarray:
        p, q = self.position(rank)
        a = self.full_matrix()
        return np.ascontiguousarray(
            a[
                p * self.block_rows : (p + 1) * self.block_rows,
                q * self.block_cols : (q + 1) * self.block_cols,
            ]
        )

    def _assemble(self, blocks: List[object]) -> np.ndarray:
        """Place each rank's post-exchange block into the result.

        After step 2, rank r owns block (u, v) = divmod(r, grid_rows) of
        the transposed matrix, whose block grid is grid_cols × grid_rows
        with blocks of shape (block_cols, block_rows).
        """
        n = self.matrix_n
        out = np.empty((n, n), dtype=np.float64)
        for src, block in enumerate(blocks):
            u, v = self.transposed_position(src)
            out[
                u * self.block_cols : (u + 1) * self.block_cols,
                v * self.block_rows : (v + 1) * self.block_rows,
            ] = block
        return out


def verify_transpose(workload: ParallelTranspose, returns: List[object]) -> None:
    """Assert the root assembled exactly ``A.T``."""
    if not workload.verify:
        raise ValueError("verification requires verify=True mode")
    assembled = returns[0]
    if assembled is None:
        raise AssertionError("root returned no assembled matrix")
    np.testing.assert_array_equal(assembled, workload.full_matrix().T)
