"""A dial-a-mix synthetic workload for exploring the DVS design space.

The paper's conclusion — savings "vary greatly with application,
workload, system, and DVS strategy" — invites a map: given a workload's
CPU / memory / communication mix, where does its best operating point
land?  :class:`SyntheticMix` makes the mix an explicit three-way dial so
examples and tests can sweep it (see
``examples/workload_mix_explorer.py``).
"""

from __future__ import annotations

from repro.dvs.controller import DvsController
from repro.hardware.memory import AccessCost
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["SyntheticMix"]


class SyntheticMix(Workload):
    """Iterated phases with a chosen cpu/memory/communication balance.

    Parameters
    ----------
    cpu_fraction, memory_fraction, comm_fraction:
        Target shares of wall time at the *fastest* operating point;
        must sum to 1.
    iteration_seconds:
        Wall time of one iteration at the fastest point.
    iterations:
        Number of iterations.
    n_ranks:
        Communication is an all-to-all among this many ranks (≥2 for a
        nonzero comm fraction).
    """

    def __init__(
        self,
        cpu_fraction: float,
        memory_fraction: float,
        comm_fraction: float,
        iteration_seconds: float = 1.0,
        iterations: int = 4,
        n_ranks: int = 4,
        peak_frequency: float = 1.4e9,
        payload_rate: float = 100e6 * 0.9 / 8,
    ):
        total = cpu_fraction + memory_fraction + comm_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {total}")
        for name, value in (
            ("cpu_fraction", cpu_fraction),
            ("memory_fraction", memory_fraction),
            ("comm_fraction", comm_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {value}")
        if comm_fraction > 0 and n_ranks < 2:
            raise ValueError("communication requires at least 2 ranks")
        if iterations < 1 or iteration_seconds <= 0:
            raise ValueError("iterations and iteration_seconds must be positive")
        self.cpu_fraction = cpu_fraction
        self.memory_fraction = memory_fraction
        self.comm_fraction = comm_fraction
        self.iteration_seconds = iteration_seconds
        self.iterations = iterations
        self.n_ranks = n_ranks
        self.peak_frequency = peak_frequency
        self.payload_rate = payload_rate
        self.name = (
            f"mix.c{cpu_fraction:.2f}m{memory_fraction:.2f}x{comm_fraction:.2f}"
        )

    # ------------------------------------------------------------------
    @property
    def cpu_cycles_per_iteration(self) -> float:
        return self.cpu_fraction * self.iteration_seconds * self.peak_frequency

    @property
    def stall_seconds_per_iteration(self) -> float:
        return self.memory_fraction * self.iteration_seconds

    @property
    def alltoall_block_bytes(self) -> int:
        """Block size so the exchange takes ~comm_fraction of an iteration.

        In the pairwise exchange every rank sends (p−1) blocks at the
        payload rate; blocks through distinct links overlap, so wall time
        ≈ (p−1)·block/rate.
        """
        if self.comm_fraction == 0 or self.n_ranks < 2:
            return 0
        seconds = self.comm_fraction * self.iteration_seconds
        return int(seconds * self.payload_rate / (self.n_ranks - 1))

    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        cost = AccessCost(
            cpu_cycles=self.cpu_cycles_per_iteration,
            stall_seconds=self.stall_seconds_per_iteration,
        )
        block = self.alltoall_block_bytes
        for _ in range(self.iterations):
            yield from execute_cost(comm, cost)
            if block > 0:
                yield from dvs.region_enter("exchange")
                yield from comm.alltoall(nbytes_each=block)
                yield from dvs.region_exit("exchange")
        return None
