"""NAS CG (Conjugate Gradient) — extension workload.

CG completes the communication-pattern coverage: where FT is
bandwidth-bound (huge all-to-alls) and EP is compute-bound, CG's inner
loop is *latency*-bound — every iteration needs an allgather of the
search direction and two 8-byte allreduce dot-products, so per-message
software overhead (which scales with CPU frequency) shows up directly in
its crescendo.

Verification mode runs the real algorithm: a 2-D five-point Laplacian
(SPD) partitioned by rows, local sparse matvecs against the allgathered
vector, and the solution checked against ``scipy`` — real distributed
numerics through the simulated MPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.dvs.controller import DvsController
from repro.hardware.memory import AccessCost
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["CGClass", "CG_CLASSES", "NasCG", "verify_cg"]

FLOAT_BYTES = 8


@dataclass(frozen=True)
class CGClass:
    """One CG problem class (unknowns and iteration count, as in NPB)."""

    name: str
    n: int
    iterations: int
    nonzeros_per_row: int = 11


CG_CLASSES: Dict[str, CGClass] = {
    "S": CGClass("S", 1_400, 15),
    "W": CGClass("W", 7_000, 15),
    "A": CGClass("A", 14_000, 15),
    "B": CGClass("B", 75_000, 75),
    "C": CGClass("C", 150_000, 75),
}


def laplacian_2d(grid: int) -> sp.csr_matrix:
    """The 2-D five-point Laplacian on a ``grid × grid`` mesh (SPD)."""
    main = 4.0 * np.ones(grid * grid)
    side = -1.0 * np.ones(grid * grid - 1)
    side[np.arange(1, grid * grid) % grid == 0] = 0.0  # row boundaries
    updown = -1.0 * np.ones(grid * grid - grid)
    return sp.diags(
        [main, side, side, updown, updown],
        [0, 1, -1, grid, -grid],
        format="csr",
    )


class NasCG(Workload):
    """CG on ``n_ranks`` ranks with 1-D row partitioning.

    In verification mode the unknown count is ``grid²`` for the Laplacian
    test problem (``grid`` must divide by ``n_ranks``); in synthetic mode
    the NPB class sizes drive the cost model.
    """

    def __init__(
        self,
        problem_class: str = "S",
        n_ranks: int = 8,
        verify: bool = False,
        grid: int = 32,
        iterations: Optional[int] = None,
        cycles_per_nonzero: float = 8.0,
    ):
        if problem_class not in CG_CLASSES:
            raise ValueError(
                f"unknown CG class {problem_class!r}; pick from {sorted(CG_CLASSES)}"
            )
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.problem = CG_CLASSES[problem_class]
        self.verify = verify
        self.grid = grid
        self.n_ranks = n_ranks
        self.cycles_per_nonzero = cycles_per_nonzero
        if verify:
            self.n = grid * grid
            if self.n % n_ranks:
                raise ValueError(
                    f"grid²={self.n} must divide over {n_ranks} ranks"
                )
        else:
            self.n = (self.problem.n // n_ranks) * n_ranks
        self.iterations = (
            int(iterations) if iterations is not None else self.problem.iterations
        )
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.name = f"cg.{self.problem.name}"

    # ------------------------------------------------------------------
    @property
    def rows_local(self) -> int:
        return self.n // self.n_ranks

    @property
    def allgather_block_bytes(self) -> int:
        return self.rows_local * FLOAT_BYTES

    def matvec_cost(self, memory) -> AccessCost:
        """Local sparse matvec: nnz-driven cycles + streaming stalls."""
        nnz_local = self.rows_local * self.problem.nonzeros_per_row
        cycles = nnz_local * self.cycles_per_nonzero
        # stream the local matrix (values+indices ~12 B/nnz) and vectors
        bytes_touched = nnz_local * 12 + 3 * self.rows_local * FLOAT_BYTES
        stream = memory.stream_copy_cost(bytes_touched)
        return AccessCost(cycles, 0.0) + stream

    # ------------------------------------------------------------------
    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        rank = comm.rank
        rows = self.rows_local
        cost = self.matvec_cost(comm.memory)

        if self.verify:
            full = laplacian_2d(self.grid)
            a_local = full[rank * rows : (rank + 1) * rows]
            b_local = np.ones(rows)
            x_local = np.zeros(rows)
            r_local = b_local.copy()
            p_local = r_local.copy()
            rho = None
        else:
            a_local = b_local = x_local = r_local = p_local = None
            rho = None

        residuals: List[float] = []
        for _ in range(self.iterations):
            # rho = r·r (allreduce of a scalar)
            local_dot = float(r_local @ r_local) if r_local is not None else 0.0
            rho_new = yield from comm.allreduce(local_dot, nbytes=8)

            if rho is not None and self.verify:
                beta = rho_new / rho
                p_local = r_local + beta * p_local
            rho = rho_new

            # q = A p — needs the whole p vector (allgather), marked as
            # the communication region
            yield from dvs.region_enter("exchange")
            if self.verify:
                blocks = yield from comm.allgather(p_local)
                p_full = np.concatenate(blocks)
            else:
                yield from comm.allgather(
                    None, nbytes=self.allgather_block_bytes
                )
                p_full = None
            yield from dvs.region_exit("exchange")

            yield from execute_cost(comm, cost)
            if self.verify:
                q_local = a_local @ p_full

            # alpha = rho / (p·q)
            local_pq = float(p_local @ q_local) if self.verify else 0.0
            pq = yield from comm.allreduce(local_pq, nbytes=8)
            if self.verify:
                alpha = rho / pq
                x_local = x_local + alpha * p_local
                r_local = r_local - alpha * q_local
            residuals.append(rho)
        return {"x": x_local, "residuals": residuals}


def verify_cg(workload: NasCG, returns: List[dict]) -> None:
    """Distributed CG must converge toward scipy's solution."""
    if not workload.verify:
        raise ValueError("verification requires verify=True mode")
    full = laplacian_2d(workload.grid)
    b = np.ones(workload.n)
    reference = spla.spsolve(full.tocsc(), b)
    x = np.concatenate([r["x"] for r in returns])
    n_iter = workload.iterations

    # Residual must decrease monotonically-ish and substantially.
    residuals = returns[0]["residuals"]
    assert residuals[-1] < residuals[0] * 0.5, (
        f"CG failed to reduce the residual: {residuals[0]} -> {residuals[-1]}"
    )
    # With enough iterations the solution approaches the direct solve.
    if n_iter >= workload.grid:
        err = np.linalg.norm(x - reference) / np.linalg.norm(reference)
        assert err < 1e-6, f"CG solution error {err}"
    # Every rank saw identical residual history (reductions are global).
    for other in returns[1:]:
        np.testing.assert_allclose(other["residuals"], residuals)
