"""Workload abstraction shared by applications and microbenchmarks.

A :class:`Workload` describes a complete program: how many ranks it wants,
and a per-rank generator (``program``) that exercises the CPU, memory and
MPI models.  Programs receive a :class:`~repro.dvs.controller.DvsController`
and mark their slack-heavy regions with ``region_enter``/``region_exit`` —
the hooks the paper's dynamic strategy uses.

:func:`execute_cost` is the bridge from the memory model's
:class:`~repro.hardware.memory.AccessCost` decomposition to the CPU: the
frequency-dependent cycles run as ACTIVE work, the frequency-independent
part stalls as MEMSTALL.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.dvs.controller import DvsController, NullController
from repro.dvs.strategy import DVSStrategy
from repro.hardware.activity import CpuActivity
from repro.hardware.memory import AccessCost
from repro.sim.events import Event

__all__ = ["Workload", "execute_cost"]

WorkGen = Generator[Event, object, object]


def execute_cost(comm, cost: AccessCost) -> WorkGen:
    """Run an :class:`AccessCost` on this rank's CPU.

    Cycles are ACTIVE (scale with the DVS point); stall seconds are
    MEMSTALL (fixed wall time, reduced power).
    """
    if cost.cpu_cycles > 0:
        yield from comm.cpu.run_cycles(cost.cpu_cycles, state=CpuActivity.ACTIVE)
    if cost.stall_seconds > 0:
        yield from comm.cpu.stall(cost.stall_seconds, CpuActivity.MEMSTALL)
    return None


class Workload:
    """Base class for runnable workloads."""

    #: short identifier used in figures and reports
    name: str = "workload"
    #: number of MPI ranks the workload is defined for
    n_ranks: int = 1

    def program(self, comm, dvs: DvsController) -> WorkGen:
        """The per-rank program body.  Subclasses must override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def bind(self, strategy: DVSStrategy) -> Callable:
        """A rank-program callable for :func:`repro.simmpi.run_spmd`.

        Wires each rank's DVS controller from the strategy.
        """

        def rank_program(comm):
            dvs = strategy.controller(comm)
            result = yield from self.program(comm, dvs)
            return result

        rank_program.__name__ = f"{self.name}_program"
        return rank_program

    def bind_plain(self) -> Callable:
        """A rank program with DVS markers disabled (no strategy)."""

        def rank_program(comm):
            result = yield from self.program(comm, NullController())
            return result

        rank_program.__name__ = f"{self.name}_program"
        return rank_program

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} np={self.n_ranks}>"
