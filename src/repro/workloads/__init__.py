"""Workloads: the paper's applications and microbenchmarks.

NAS FT (distributed 3-D FFT with real-data verification), the parallel
matrix transpose (5×3 grid, steps 1-3), SPEC-like sequential kernels
(mgrid-like, swim-like), and the PowerPack microbenchmark suite
(memory-/L2-/register-/communication-bound).
"""

from repro.workloads.base import Workload, execute_cost
from repro.workloads.imbalanced import ImbalancedMix
from repro.workloads.micro import (
    L2BoundMicro,
    MemoryBoundMicro,
    RegisterMicro,
    RoundtripMicro,
)
from repro.workloads.nas_cg import CG_CLASSES, CGClass, NasCG, laplacian_2d, verify_cg
from repro.workloads.nas_ep import EP_CLASSES, EPClass, NasEP, verify_ep
from repro.workloads.nas_ft import (
    FT_CLASSES,
    FTClass,
    NasFT,
    verify_distributed_fft,
)
from repro.workloads.nas_mg import NasMG, verify_mg
from repro.workloads.spec_like import MgridLike, SequentialKernel, SwimLike
from repro.workloads.stencil import HaloStencil, verify_stencil
from repro.workloads.synthetic import SyntheticMix
from repro.workloads.transpose import ParallelTranspose, verify_transpose

__all__ = [
    "Workload",
    "execute_cost",
    "NasFT",
    "FTClass",
    "FT_CLASSES",
    "verify_distributed_fft",
    "NasEP",
    "EPClass",
    "EP_CLASSES",
    "verify_ep",
    "NasCG",
    "CGClass",
    "CG_CLASSES",
    "laplacian_2d",
    "verify_cg",
    "NasMG",
    "verify_mg",
    "HaloStencil",
    "verify_stencil",
    "SyntheticMix",
    "ImbalancedMix",
    "ParallelTranspose",
    "verify_transpose",
    "SequentialKernel",
    "MgridLike",
    "SwimLike",
    "MemoryBoundMicro",
    "L2BoundMicro",
    "RegisterMicro",
    "RoundtripMicro",
]
