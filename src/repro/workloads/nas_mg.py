"""NAS MG (simplified multigrid) — extension workload.

MG is the distributed cousin of Figure 1's sequential *mgrid*: V-cycles
over a hierarchy of grids.  Its DVS profile is uniquely *level-dependent*
— fine levels stream large panels (memory-bound, DVS-friendly), coarse
levels exchange tiny halos (latency-bound, sensitive to per-message
software cost) — which makes it the natural stress test for per-region
strategies: a controller that treats "the whole V-cycle" as one region
gets a blend; one that distinguishes levels can do better.

Structure (2-D variant, 1-D row decomposition, as fits the framework's
verification budget; the communication structure per level matches the
3-D original):

* at each level: one Jacobi smoothing sweep with halo exchange;
* restriction (injection) down to the coarsest level the decomposition
  supports (≥ 2 rows per rank), then prolongation (nearest-neighbour)
  back up with another smoothing sweep per level.

Verification mode runs the real numpy arithmetic and checks every rank's
final panel against a single-array reference V-cycle.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dvs.controller import DvsController
from repro.workloads.base import Workload, WorkGen, execute_cost

__all__ = ["NasMG", "verify_mg"]

TAG_UP = 401
TAG_DOWN = 402
FLOAT_BYTES = 8


def _smooth(padded: np.ndarray) -> np.ndarray:
    """Five-point Jacobi smoothing of the padded array's interior."""
    return 0.25 * (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Injection restriction (every second point)."""
    return np.ascontiguousarray(fine[::2, ::2])


def _prolong(coarse: np.ndarray) -> np.ndarray:
    """Nearest-neighbour prolongation (each point fills a 2x2 block)."""
    return np.repeat(np.repeat(coarse, 2, axis=0), 2, axis=1)


class NasMG(Workload):
    """Simplified MG on an ``n × n`` grid across ``n_ranks`` row panels."""

    def __init__(
        self,
        n: int = 1024,
        n_ranks: int = 8,
        v_cycles: int = 4,
        verify: bool = False,
        flops_per_point: float = 8.0,
    ):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        if n % n_ranks:
            raise ValueError(f"n={n} must divide over {n_ranks} ranks")
        if n & (n - 1):
            raise ValueError(f"n={n} must be a power of two")
        # (n_ranks is then necessarily a power of two: it divides n.)
        if v_cycles < 1:
            raise ValueError(f"v_cycles must be >= 1, got {v_cycles}")
        if n // n_ranks < 4:
            raise ValueError("need at least 4 rows per rank on the fine grid")
        if verify and n * n * FLOAT_BYTES > 64 << 20:
            raise ValueError("grid too large for verification mode")
        self.n = n
        self.n_ranks = n_ranks
        self.v_cycles = v_cycles
        self.verify = verify
        self.flops_per_point = flops_per_point
        self.name = f"mg.{n}x{n}"

    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Grid levels down to 2 rows per rank (level 0 = finest)."""
        rows = self.n // self.n_ranks
        count = 1
        while rows // 2 >= 2 and (self.n >> count) >= 2:
            rows //= 2
            count += 1
        return count

    def level_n(self, level: int) -> int:
        return self.n >> level

    def rows_local(self, level: int) -> int:
        return self.level_n(level) // self.n_ranks

    def halo_bytes(self, level: int) -> int:
        return self.level_n(level) * FLOAT_BYTES

    def smooth_cost(self, memory, level: int):
        panel_bytes = self.rows_local(level) * self.level_n(level) * FLOAT_BYTES
        stream = memory.stream_copy_cost(2 * panel_bytes)
        flops = memory.register_loop_cost(
            int(self.rows_local(level) * self.level_n(level) * self.flops_per_point)
        )
        return stream + flops

    # ------------------------------------------------------------------
    def _initial_panel(self, rank: int) -> np.ndarray:
        rows = self.rows_local(0)
        r0 = rank * rows
        i = np.arange(r0, r0 + rows, dtype=np.float64)[:, None]
        j = np.arange(self.n, dtype=np.float64)[None, :]
        return np.sin(0.02 * i) * np.cos(0.03 * j)

    def _halo_exchange(self, comm, panel: Optional[np.ndarray], level: int,
                       tag_base: int) -> WorkGen:
        """Exchange boundary rows; returns (top, bottom) halo rows."""
        rank, size = comm.rank, comm.size
        up = rank - 1 if rank > 0 else None
        down = rank + 1 if rank < size - 1 else None
        nbytes = None if self.verify else self.halo_bytes(level)
        reqs, order = [], []
        if up is not None:
            reqs.append(comm.irecv(source=up, tag=tag_base + TAG_DOWN))
            order.append("top")
            sreq = yield from comm.isend(
                panel[0].copy() if panel is not None else None,
                dest=up, tag=tag_base + TAG_UP, nbytes=nbytes,
            )
            reqs.append(sreq)
            order.append(None)
        if down is not None:
            reqs.append(comm.irecv(source=down, tag=tag_base + TAG_UP))
            order.append("bottom")
            sreq = yield from comm.isend(
                panel[-1].copy() if panel is not None else None,
                dest=down, tag=tag_base + TAG_DOWN, nbytes=nbytes,
            )
            reqs.append(sreq)
            order.append(None)
        values = yield from comm.waitall(reqs)
        halos = {"top": None, "bottom": None}
        for key, value in zip(order, values):
            if key is not None:
                halos[key] = value
        return halos["top"], halos["bottom"]

    def _smooth_level(self, comm, panel, level, tag_base) -> WorkGen:
        """One smoothing sweep at ``level`` (exchange + compute)."""
        top, bottom = yield from self._halo_exchange(comm, panel, level, tag_base)
        yield from execute_cost(comm, self.smooth_cost(comm.memory, level))
        if panel is None:
            return None
        rows, cols = panel.shape
        padded = np.zeros((rows + 2, cols + 2))
        padded[1:-1, 1:-1] = panel
        if top is not None:
            padded[0, 1:-1] = top
        if bottom is not None:
            padded[-1, 1:-1] = bottom
        return _smooth(padded)

    def program(self, comm, dvs: DvsController) -> WorkGen:
        if comm.size != self.n_ranks:
            raise ValueError(
                f"{self.name} built for {self.n_ranks} ranks, launched on "
                f"{comm.size}"
            )
        panel = self._initial_panel(comm.rank) if self.verify else None
        levels = self.levels
        tag_stride = 1000
        for cycle in range(self.v_cycles):
            base = cycle * tag_stride * (2 * levels + 2)
            stack: List[Optional[np.ndarray]] = []
            # --- downsweep: smooth then restrict -----------------------
            for level in range(levels - 1):
                panel = yield from self._smooth_level(
                    comm, panel, level, base + level * tag_stride
                )
                stack.append(panel)
                panel = _restrict(panel) if panel is not None else None
            # --- coarsest level: latency-bound region -------------------
            yield from dvs.region_enter("coarse")
            panel = yield from self._smooth_level(
                comm, panel, levels - 1, base + (levels - 1) * tag_stride
            )
            yield from dvs.region_exit("coarse")
            # --- upsweep: prolong then smooth ---------------------------
            for level in range(levels - 2, -1, -1):
                fine = stack.pop()
                if panel is not None:
                    panel = fine + _prolong(panel)
                panel = yield from self._smooth_level(
                    comm, panel, level, base + (levels + level) * tag_stride
                )
        return panel

    # ------------------------------------------------------------------
    def reference_field(self) -> np.ndarray:
        """Single-array reference of the full grid after all V-cycles."""
        field = np.concatenate(
            [self._initial_panel(r) for r in range(self.n_ranks)], axis=0
        )
        levels = self.levels

        def smooth_full(array: np.ndarray) -> np.ndarray:
            padded = np.zeros((array.shape[0] + 2, array.shape[1] + 2))
            padded[1:-1, 1:-1] = array
            return _smooth(padded)

        for _ in range(self.v_cycles):
            stack = []
            for _level in range(levels - 1):
                field = smooth_full(field)
                stack.append(field)
                field = _restrict(field)
            field = smooth_full(field)
            for _level in range(levels - 2, -1, -1):
                fine = stack.pop()
                field = smooth_full(fine + _prolong(field))
        return field


def verify_mg(workload: NasMG, returns: List[object]) -> None:
    """Distributed panels must tile the single-array reference."""
    if not workload.verify:
        raise ValueError("verification requires verify=True mode")
    reference = workload.reference_field()
    rows = workload.rows_local(0)
    for rank, panel in enumerate(returns):
        expected = reference[rank * rows : (rank + 1) * rows]
        np.testing.assert_allclose(panel, expected, rtol=1e-12, atol=1e-12)
