"""Energy measurement via Intel RAPL (the modern battery/multimeter).

The paper measured node energy with ACPI batteries and Baytech meters;
on current hardware the equivalent instrument is the RAPL energy counter
exposed through powercap::

    /sys/class/powercap/intel-rapl:0/energy_uj
    /sys/class/powercap/intel-rapl:0/max_energy_range_uj

``energy_uj`` is a monotonically increasing µJ counter that wraps at
``max_energy_range_uj``; :class:`RaplMeter` handles the wrap and exposes
the same begin/measure protocol as the emulated instruments.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["RaplMeter", "RaplError"]


class RaplError(RuntimeError):
    """A RAPL read failed or no domain is available."""


class RaplMeter:
    """Energy meter over one RAPL domain."""

    def __init__(
        self,
        domain: str = "intel-rapl:0",
        root: str = "/sys/class/powercap",
    ):
        self.root = root
        self.domain = domain
        self._dir = os.path.join(root, domain)
        self._last_uj: Optional[float] = None
        self._accumulated_uj = 0.0

    # ------------------------------------------------------------------
    def _read_file(self, name: str) -> float:
        path = os.path.join(self._dir, name)
        try:
            with open(path, "r", encoding="ascii") as fh:
                return float(fh.read().strip())
        except OSError as exc:
            raise RaplError(f"cannot read {path}: {exc}") from exc

    @property
    def available(self) -> bool:
        return os.path.isfile(os.path.join(self._dir, "energy_uj"))

    @property
    def name(self) -> str:
        """The domain's human-readable name (e.g. ``package-0``)."""
        path = os.path.join(self._dir, "name")
        try:
            with open(path, "r", encoding="ascii") as fh:
                return fh.read().strip()
        except OSError:
            return self.domain

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start (or restart) accumulation at the current counter value."""
        self._last_uj = self._read_file("energy_uj")
        self._accumulated_uj = 0.0

    def sample(self) -> float:
        """Accumulate since the previous call; returns joules so far.

        Call at least once per counter wrap period (minutes at package
        power levels) for correct wrap handling.
        """
        if self._last_uj is None:
            raise RaplError("sample() before begin()")
        now_uj = self._read_file("energy_uj")
        delta = now_uj - self._last_uj
        if delta < 0:  # counter wrapped
            delta += self._read_file("max_energy_range_uj")
        self._accumulated_uj += delta
        self._last_uj = now_uj
        return self.energy_joules

    @property
    def energy_joules(self) -> float:
        """Energy accumulated since :meth:`begin` (joules)."""
        return self._accumulated_uj / 1e6
