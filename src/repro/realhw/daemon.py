"""A real userspace DVS governor running the shared cpuspeed policy.

Drives actual hardware through :class:`~repro.realhw.sysfs_cpufreq.SysfsCpuFreq`
using the *same* decision rule as the simulated daemon
(:func:`repro.dvs.policy.cpuspeed_decision`), which is what makes the
simulation's cpuspeed results transferable claims rather than artifacts
of a reimplementation.

The loop is dependency-injected (clock, sleeper, stat reader) so tests
drive it deterministically without threads or real sysfs.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.dvs.policy import cpuspeed_decision
from repro.hardware.procstat import ProcStatSample
from repro.realhw.procstat import read_proc_stat
from repro.realhw.sysfs_cpufreq import SysfsCpuFreq

__all__ = ["RealCpuspeedDaemon"]


class RealCpuspeedDaemon:
    """cpuspeed for real hardware (single CPU)."""

    def __init__(
        self,
        cpufreq: SysfsCpuFreq,
        interval: float = 1.0,
        up_threshold: float = 0.90,
        down_threshold: float = 0.25,
        stat_reader: Optional[Callable[[], ProcStatSample]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.cpufreq = cpufreq
        self.interval = interval
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self._read_stat = stat_reader or (
            lambda: read_proc_stat(cpu=cpufreq.cpu)
        )
        self._sleep = sleep
        self._stopped = False
        #: (utilization, chosen Hz) per tick
        self.decisions: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stopped = True

    def tick(self, prev: ProcStatSample) -> ProcStatSample:
        """One decision step; returns the new baseline sample."""
        current = self._read_stat()
        util = current.utilization_since(prev)
        target = cpuspeed_decision(
            util,
            self.cpufreq.current_frequency,
            self.cpufreq.available_frequencies,
            up_threshold=self.up_threshold,
            down_threshold=self.down_threshold,
        )
        if target != self.cpufreq.current_frequency:
            self.cpufreq.set_speed_now(target)
        self.decisions.append((util, target))
        return current

    def run(self, max_ticks: Optional[int] = None) -> None:
        """The daemon loop (blocking; use a thread for background runs)."""
        prev = self._read_stat()
        ticks = 0
        while not self._stopped:
            if max_ticks is not None and ticks >= max_ticks:
                return
            self._sleep(self.interval)
            prev = self.tick(prev)
            ticks += 1
