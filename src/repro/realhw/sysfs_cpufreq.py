"""Real Linux CPUFreq control through sysfs.

The modern equivalent of the paper's platform interface: the kernel's
``cpufreq`` subsystem exposed under
``/sys/devices/system/cpu/cpu<N>/cpufreq``.  This class mirrors the
simulated :class:`repro.dvs.cpufreq.CpuFreq` API so the PowerPack-style
framework can drive *actual hardware* where available (the ``userspace``
governor plus ``scaling_setspeed``, exactly how the paper's PowerPack
libraries set frequencies).

All paths are parameterised by a root directory so tests can exercise the
full read/write logic against a fake sysfs tree; nothing here imports
hardware-specific modules.
"""

from __future__ import annotations

import os
from typing import List

__all__ = ["SysfsCpuFreq", "CpufreqError"]


class CpufreqError(RuntimeError):
    """A sysfs cpufreq read or write failed."""


class SysfsCpuFreq:
    """Frequency control for one logical CPU via sysfs.

    Frequencies are **Hz** at this API (converted from the kernel's kHz),
    matching the simulated interface.
    """

    def __init__(self, cpu: int = 0, root: str = "/sys/devices/system/cpu"):
        if cpu < 0:
            raise ValueError(f"cpu index must be >= 0, got {cpu}")
        self.cpu = cpu
        self.root = root
        self._dir = os.path.join(root, f"cpu{cpu}", "cpufreq")

    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        return os.path.join(self._dir, name)

    def _read(self, name: str) -> str:
        try:
            with open(self._path(name), "r", encoding="ascii") as fh:
                return fh.read().strip()
        except OSError as exc:
            raise CpufreqError(f"cannot read {self._path(name)}: {exc}") from exc

    def _write(self, name: str, value: str) -> None:
        try:
            with open(self._path(name), "w", encoding="ascii") as fh:
                fh.write(value)
        except OSError as exc:
            raise CpufreqError(f"cannot write {self._path(name)}: {exc}") from exc

    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether this CPU exposes cpufreq at all."""
        return os.path.isdir(self._dir)

    @property
    def current_frequency(self) -> float:
        """``scaling_cur_freq`` in Hz."""
        return float(self._read("scaling_cur_freq")) * 1e3

    @property
    def available_frequencies(self) -> List[float]:
        """``scaling_available_frequencies`` in Hz, slowest first.

        Falls back to the min/max bounds when the detailed list is absent
        (some drivers, e.g. intel_pstate, do not publish it).
        """
        try:
            text = self._read("scaling_available_frequencies")
            freqs = sorted(float(tok) * 1e3 for tok in text.split())
            if freqs:
                return freqs
        except CpufreqError:
            pass
        lo = float(self._read("cpuinfo_min_freq")) * 1e3
        hi = float(self._read("cpuinfo_max_freq")) * 1e3
        return [lo, hi] if lo != hi else [lo]

    @property
    def governor(self) -> str:
        return self._read("scaling_governor")

    def set_governor(self, governor: str) -> None:
        self._write("scaling_governor", governor)

    def set_speed_now(self, frequency: float) -> None:
        """Snap to the nearest legal frequency via ``scaling_setspeed``.

        Requires the ``userspace`` governor; this method switches to it if
        needed (what the paper's static/dynamic strategies did).
        """
        if self.governor != "userspace":
            self.set_governor("userspace")
        ladder = self.available_frequencies
        target = min(ladder, key=lambda f: abs(f - frequency))
        self._write("scaling_setspeed", str(int(round(target / 1e3))))

    def resolve(self, frequency: float) -> float:
        """Nearest legal frequency in Hz (API parity with the simulator)."""
        return min(self.available_frequencies, key=lambda f: abs(f - frequency))
