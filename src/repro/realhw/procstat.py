"""Parsing the real ``/proc/stat`` into the framework's sample type.

The cpuspeed emulation and the real daemon both consume
:class:`repro.hardware.procstat.ProcStatSample`; this module produces
them from actual kernel output (or any file with the same format, which
is how tests exercise it).

``/proc/stat`` line format (per ``man 5 proc``)::

    cpu  user nice system idle iowait irq softirq steal guest guest_nice

Times are in USER_HZ ticks (canonically 100/s).  Busy-wait spinning shows
up in *user* time, which is precisely the accounting artifact the paper
analyses — this parser classifies exactly as the kernel reports.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.procstat import ProcStatSample

__all__ = ["parse_proc_stat", "read_proc_stat", "USER_HZ"]

#: Kernel tick rate exposed to userspace (CONFIG-independent since 2.6).
USER_HZ = 100.0

#: column order after the "cpuN" label
_FIELDS = (
    "user",
    "nice",
    "system",
    "idle",
    "iowait",
    "irq",
    "softirq",
    "steal",
    "guest",
    "guest_nice",
)

#: fields the classic cpuspeed counted as idle
_IDLE_FIELDS = frozenset({"idle", "iowait"})


def parse_proc_stat(text: str, cpu: Optional[int] = None) -> ProcStatSample:
    """Parse ``/proc/stat`` content into cumulative busy/idle seconds.

    Parameters
    ----------
    text:
        The file's content.
    cpu:
        Per-CPU row to use (``cpuN``); ``None`` uses the aggregate
        ``cpu`` row.
    """
    label = "cpu" if cpu is None else f"cpu{cpu}"
    for line in text.splitlines():
        parts = line.split()
        if not parts or parts[0] != label:
            continue
        values = [float(v) for v in parts[1 : 1 + len(_FIELDS)]]
        busy = idle = 0.0
        for name, ticks in zip(_FIELDS, values):
            if name in _IDLE_FIELDS:
                idle += ticks
            else:
                busy += ticks
        return ProcStatSample(busy=busy / USER_HZ, idle=idle / USER_HZ)
    raise ValueError(f"no {label!r} line in /proc/stat content")


def read_proc_stat(
    path: str = "/proc/stat", cpu: Optional[int] = None
) -> ProcStatSample:
    """Read and parse the real file (or a test fixture at ``path``)."""
    with open(path, "r", encoding="ascii") as fh:
        return parse_proc_stat(fh.read(), cpu=cpu)
