"""Real-hardware backend (modern Linux equivalents of the paper's rig).

Everything in :mod:`repro` above the hardware layer — the weighted-ED²P
metrics, the strategy logic, the data alignment — is platform-agnostic.
This package provides the real-platform implementations of the low-level
interfaces, mirroring the simulated ones:

* :class:`SysfsCpuFreq` — CPUFreq via sysfs (``userspace`` governor +
  ``scaling_setspeed``, as the paper's PowerPack libraries did);
* :func:`read_proc_stat` — the actual kernel utilisation accounting;
* :class:`RaplMeter` — RAPL energy counters, today's stand-in for the
  smart battery / Baytech meter;
* :class:`RealCpuspeedDaemon` — the cpuspeed policy (shared verbatim
  with the simulation via :mod:`repro.dvs.policy`) on real sysfs.

Combine with ``mpi4py`` to run the paper's methodology on a live
cluster; every class is dependency-injected/parameterised so the logic is
fully testable without hardware.
"""

from repro.realhw.daemon import RealCpuspeedDaemon
from repro.realhw.procstat import USER_HZ, parse_proc_stat, read_proc_stat
from repro.realhw.rapl import RaplError, RaplMeter
from repro.realhw.sysfs_cpufreq import CpufreqError, SysfsCpuFreq

__all__ = [
    "SysfsCpuFreq",
    "CpufreqError",
    "parse_proc_stat",
    "read_proc_stat",
    "USER_HZ",
    "RaplMeter",
    "RaplError",
    "RealCpuspeedDaemon",
]
