"""Deterministic fault injection for the simulated cluster.

The paper motivates DVS partly on reliability (§1: components fail at
2–3 %/year; every 10 °C halves life expectancy), and
:mod:`repro.hardware.reliability` quantifies it — this package makes the
repo *exercise* failures instead of only pricing them.  A
:class:`~repro.faults.spec.FaultPlan` (declared, or rate-sampled from
the reliability model, always seed-deterministic) is driven against a
live cluster by a :class:`~repro.faults.injector.FaultInjector`:
fail-stop node crashes with reboot-at-max restarts, stuck DVFS
regulators, telemetry dropout and meter noise, and degraded links.

The defense lives in :mod:`repro.powercap` (the hardened
``CapGovernor`` with a :class:`~repro.powercap.resilience.ResilienceConfig`);
the offense/defense match-up is swept by the ``chaos`` experiment via
:mod:`repro.faults.sweep`, cached and resumable like every other sweep.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    DvfsStuck,
    FaultPlan,
    FaultSpec,
    LinkDegraded,
    NodeCrash,
    TelemetryDropout,
    TelemetryNoise,
    acceleration_for,
)
from repro.faults.sweep import (
    ChaosOutcome,
    ChaosTask,
    chaos_task_key,
    run_chaos_sweep,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NodeCrash",
    "DvfsStuck",
    "TelemetryDropout",
    "TelemetryNoise",
    "LinkDegraded",
    "acceleration_for",
    "ChaosTask",
    "ChaosOutcome",
    "chaos_task_key",
    "run_chaos_sweep",
]
