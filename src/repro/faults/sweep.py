"""Cached, resumable chaos sweeps: fault plans × cap strategies.

A :class:`ChaosTask` is the picklable description of one faulted capped
run — workload, :class:`~repro.faults.spec.FaultPlan`, budget, policy,
hardened or fair-weather governor.  Because every field (including the
plan, a tree of frozen dataclasses) lowers through
:func:`repro.cache.keys.canonical_encode`, a task has a content hash
(:func:`chaos_task_key`) and chaos sweeps get the same caching contract
as ordinary sweeps: :func:`run_chaos_sweep` short-circuits stored
outcomes and persists each fresh one the moment it completes, so an
interrupted chaos sweep resumes where it stopped.

The stored record reuses the run cache unchanged: the energy/delay point
goes in as the point, the :class:`~repro.metrics.chaos.ChaosReport`
rides in the record's ``meta`` dict.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.parallel import (
    _UNSET,
    SweepError,
    resolve_sweep_options,
    run_collected,
)
from repro.analysis.runner import run_measured
from repro.cache.keys import canonical_encode, simulator_salt
from repro.hardware.calibration import Calibration
from repro.hardware.cluster import Cluster
from repro.metrics.chaos import ChaosReport, build_chaos_report
from repro.metrics.records import EnergyDelayPoint
from repro.obs.tracer import Tracer, tracing
from repro.powercap import (
    CapGovernorConfig,
    PowerBudget,
    PowerCapStrategy,
    ResilienceConfig,
    SlackRedistributionPolicy,
    UniformCapPolicy,
)
from repro.util.validation import check_nonnegative, check_positive
from repro.workloads.base import Workload

from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultPlan

__all__ = [
    "CHAOS_POLICIES",
    "ChaosOutcome",
    "ChaosTask",
    "chaos_task_key",
    "run_chaos_sweep",
]

#: Allocation policies a :class:`ChaosTask` can name.
CHAOS_POLICIES = ("uniform", "redist")

#: ``meta`` tag marking a cache record as a chaos outcome (a plain sweep
#: point stored under a colliding key must never decode as one).
_META_KIND = "chaos-report"


@dataclass(frozen=True)
class ChaosTask:
    """One faulted capped run (picklable, content-hashable).

    ``hardened=True`` runs the self-healing governor
    (:class:`~repro.powercap.resilience.ResilienceConfig` defaults);
    ``False`` runs the fair-weather baseline against the same faults.
    """

    workload: Workload
    plan: FaultPlan
    budget_watts: float
    policy: str = "redist"  #: one of :data:`CHAOS_POLICIES`
    hardened: bool = True
    interval: float = 0.25  #: governor control interval (seconds)
    #: grace period after each fault transition within which budget
    #: violations are excused (see :mod:`repro.metrics.chaos`)
    allowed_recovery_s: float = 1.0
    calibration: Optional[Calibration] = None

    def __post_init__(self) -> None:
        if self.policy not in CHAOS_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"valid policies: {', '.join(CHAOS_POLICIES)}"
            )
        check_positive("budget_watts", self.budget_watts)
        check_positive("interval", self.interval)
        check_nonnegative("allowed_recovery_s", self.allowed_recovery_s)

    def build_strategy(self) -> PowerCapStrategy:
        policy = (
            UniformCapPolicy()
            if self.policy == "uniform"
            else SlackRedistributionPolicy()
        )
        return PowerCapStrategy(
            PowerBudget(cluster_watts=self.budget_watts),
            policy=policy,
            config=CapGovernorConfig(interval=self.interval),
            resilience=ResilienceConfig() if self.hardened else None,
        )


@dataclass(frozen=True)
class ChaosOutcome:
    """What one chaos run produces: its point plus its chaos score."""

    point: EnergyDelayPoint
    report: ChaosReport


def chaos_task_key(task: ChaosTask, salt: Optional[str] = None) -> str:
    """SHA-256 content hash of one chaos task (hex digest).

    Shares :func:`~repro.cache.keys.task_key`'s conventions: the version
    salt is folded in, and a ``calibration`` of ``None`` is normalised to
    the default calibration the runner substitutes at execution time.
    The fault plan is part of the hash, so two sweeps differing only in
    fault timelines never collide.
    """
    from repro.hardware.calibration import DEFAULT_CALIBRATION

    if task.calibration is None:
        task = dataclasses.replace(task, calibration=DEFAULT_CALIBRATION)
    payload = {
        "salt": salt if salt is not None else simulator_salt(),
        "kind": _META_KIND,
        "task": canonical_encode(task),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _execute_chaos(task: ChaosTask) -> ChaosOutcome:
    """Worker body: one faulted run on a fresh cluster, scored."""
    strategy = task.build_strategy()

    def factory() -> Cluster:
        cluster = Cluster.build(
            task.workload.n_ranks, calibration=task.calibration
        )
        FaultInjector(cluster, task.plan).install()
        return cluster

    run = run_measured(task.workload, strategy, cluster_factory=factory)
    governor = strategy.governor
    assert governor is not None
    report = build_chaos_report(
        label=strategy.name,
        windows=governor.windows,
        transitions=task.plan.transition_times(),
        budget=strategy.budget,
        allowed_recovery_s=task.allowed_recovery_s,
        energy_j=run.point.energy,
        delay_s=run.point.delay,
        repair_events=len(governor.repair_log),
        invariant_violations=governor.monitor.count,
    )
    return ChaosOutcome(point=run.point, report=report)


def _cached_outcome(cache, key: str) -> Optional[ChaosOutcome]:
    """Decode a stored chaos record, or ``None`` on miss/foreign record."""
    point = cache.get(key)
    if point is None:
        return None
    meta = cache.get_meta(key)
    if not meta or meta.get("kind") != _META_KIND:
        return None
    try:
        report = ChaosReport.from_dict(meta["report"])
    except (KeyError, TypeError, ValueError):
        return None  # poisoned meta: fall through to re-simulation
    return ChaosOutcome(point=point, report=report)


def run_chaos_sweep(
    tasks: Sequence[ChaosTask],
    *,
    jobs: Optional[int] = None,
    use_cache: Union[bool, object] = False,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
    n_workers=_UNSET,
    cache=_UNSET,
) -> List[ChaosOutcome]:
    """Run chaos tasks, preserving input order.

    The chaos counterpart of :func:`repro.analysis.parallel.run_sweep`,
    with the identical keyword-only signature (asserted
    parameter-for-parameter in the tests): same ``jobs`` convention
    (``None`` = serial in-process, ``0`` = one worker per core, ``N`` =
    N workers), same ``use_cache``/``cache_dir`` resolution, same
    ``tracer`` semantics (installed as the active tracer, one wall-clock
    span per executed task, forces serial execution), same deprecated
    ``n_workers``/``cache`` shims, same failure collection
    (:class:`~repro.analysis.parallel.SweepError` after everything has
    been attempted), and the same cache contract (stored outcomes
    short-circuit, fresh outcomes persist on completion, so interrupted
    sweeps resume).
    """
    internal_workers, run_cache = resolve_sweep_options(
        "run_chaos_sweep", jobs, use_cache, cache_dir, tracer, n_workers, cache
    )
    scope = tracing(tracer) if tracer is not None else nullcontext()
    with scope:
        outcomes: List[Optional[ChaosOutcome]] = [None] * len(tasks)
        keys: List[Optional[str]] = [None] * len(tasks)
        if run_cache is not None:
            for i, task in enumerate(tasks):
                keys[i] = chaos_task_key(task)
                outcomes[i] = _cached_outcome(run_cache, keys[i])

        pending = [i for i, o in enumerate(outcomes) if o is None]

        def finish(index: int, outcome: ChaosOutcome) -> None:
            outcomes[index] = outcome
            if run_cache is not None:
                run_cache.put(
                    keys[index],
                    outcome.point,
                    meta={
                        "kind": _META_KIND,
                        "workload": getattr(tasks[index].workload, "name", ""),
                        "report": outcome.report.to_dict(),
                    },
                )

        execute = _execute_chaos
        if tracer is not None:
            def execute(task):  # noqa: F811 - traced replacement
                label = f"{task.policy}/{'hardened' if task.hardened else 'fairweather'}"
                with tracer.wall_span(label, "sweep.task", "sweep"):
                    return _execute_chaos(task)

        failures = run_collected(
            tasks, pending, execute, finish, internal_workers
        )
    if failures:
        raise SweepError(failures, outcomes)
    return outcomes  # type: ignore[return-value] - no None left
