"""Cached, resumable chaos sweeps: fault plans × cap strategies.

A :class:`ChaosTask` is the picklable description of one faulted capped
run — workload, :class:`~repro.faults.spec.FaultPlan`, budget, policy,
hardened or fair-weather governor.  Because every field (including the
plan, a tree of frozen dataclasses) lowers through
:func:`repro.cache.keys.canonical_encode`, a task has a content hash
(:func:`chaos_task_key`) and chaos sweeps get the same caching contract
as ordinary sweeps: :func:`run_chaos_sweep` short-circuits stored
outcomes and persists each fresh one the moment it completes, so an
interrupted chaos sweep resumes where it stopped.

The stored record reuses the run cache unchanged: the energy/delay point
goes in as the point, the :class:`~repro.metrics.chaos.ChaosReport`
rides in the record's ``meta`` dict.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.analysis.parallel import (
    _UNSET,
    SweepError,  # noqa: F401 - re-exported for callers catching sweep failures
    SweepEvent,
    execute_sweep,
)
from repro.analysis.runner import run_measured
from repro.exec.backends import ExecBackend
from repro.exec.retry import RetryPolicy
from repro.cache.keys import canonical_encode, simulator_salt
from repro.hardware.calibration import Calibration
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.metrics.chaos import ChaosReport, build_chaos_report
from repro.metrics.records import EnergyDelayPoint
from repro.obs.tracer import Tracer
from repro.powercap import (
    CapGovernorConfig,
    PowerBudget,
    PowerCapStrategy,
    ResilienceConfig,
    SlackRedistributionPolicy,
    UniformCapPolicy,
)
from repro.util.validation import check_nonnegative, check_positive
from repro.workloads.base import Workload

from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultPlan

__all__ = [
    "CHAOS_POLICIES",
    "ChaosOutcome",
    "ChaosTask",
    "chaos_task_key",
    "run_chaos_sweep",
]

#: Allocation policies a :class:`ChaosTask` can name.
CHAOS_POLICIES = ("uniform", "redist")

#: ``meta`` tag marking a cache record as a chaos outcome (a plain sweep
#: point stored under a colliding key must never decode as one).
_META_KIND = "chaos-report"


@dataclass(frozen=True)
class ChaosTask:
    """One faulted capped run (picklable, content-hashable).

    ``hardened=True`` runs the self-healing governor
    (:class:`~repro.powercap.resilience.ResilienceConfig` defaults);
    ``False`` runs the fair-weather baseline against the same faults.
    """

    workload: Workload
    plan: FaultPlan
    budget_watts: float
    policy: str = "redist"  #: one of :data:`CHAOS_POLICIES`
    hardened: bool = True
    interval: float = 0.25  #: governor control interval (seconds)
    #: grace period after each fault transition within which budget
    #: violations are excused (see :mod:`repro.metrics.chaos`)
    allowed_recovery_s: float = 1.0
    calibration: Optional[Calibration] = None

    def __post_init__(self) -> None:
        if self.policy not in CHAOS_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"valid policies: {', '.join(CHAOS_POLICIES)}"
            )
        check_positive("budget_watts", self.budget_watts)
        check_positive("interval", self.interval)
        check_nonnegative("allowed_recovery_s", self.allowed_recovery_s)

    def build_strategy(self) -> PowerCapStrategy:
        policy = (
            UniformCapPolicy()
            if self.policy == "uniform"
            else SlackRedistributionPolicy()
        )
        return PowerCapStrategy(
            PowerBudget(cluster_watts=self.budget_watts),
            policy=policy,
            config=CapGovernorConfig(interval=self.interval),
            resilience=ResilienceConfig() if self.hardened else None,
        )


@dataclass(frozen=True)
class ChaosOutcome:
    """What one chaos run produces: its point plus its chaos score."""

    point: EnergyDelayPoint
    report: ChaosReport


def chaos_task_key(task: ChaosTask, salt: Optional[str] = None) -> str:
    """SHA-256 content hash of one chaos task (hex digest).

    Shares :func:`~repro.cache.keys.task_key`'s conventions: the version
    salt is folded in, and a ``calibration`` of ``None`` is normalised to
    the default calibration the runner substitutes at execution time.
    The fault plan is part of the hash, so two sweeps differing only in
    fault timelines never collide.
    """
    from repro.hardware.calibration import DEFAULT_CALIBRATION

    if task.calibration is None:
        task = dataclasses.replace(task, calibration=DEFAULT_CALIBRATION)
    payload = {
        "salt": salt if salt is not None else simulator_salt(),
        "kind": _META_KIND,
        "task": canonical_encode(task),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _execute_chaos(task: ChaosTask) -> ChaosOutcome:
    """Worker body: one faulted run on a fresh cluster, scored."""
    strategy = task.build_strategy()

    def factory() -> Cluster:
        cluster = Cluster.from_spec(
            ClusterSpec.homogeneous(task.workload.n_ranks),
            calibration=task.calibration,
        )
        FaultInjector(cluster, task.plan).install()
        return cluster

    run = run_measured(task.workload, strategy, cluster_factory=factory)
    governor = strategy.governor
    assert governor is not None
    report = build_chaos_report(
        label=strategy.name,
        windows=governor.windows,
        transitions=task.plan.transition_times(),
        budget=strategy.budget,
        allowed_recovery_s=task.allowed_recovery_s,
        energy_j=run.point.energy,
        delay_s=run.point.delay,
        repair_events=len(governor.repair_log),
        invariant_violations=governor.monitor.count,
    )
    return ChaosOutcome(point=run.point, report=report)


def _cached_outcome(cache, key: str) -> Optional[ChaosOutcome]:
    """Decode a stored chaos record, or ``None`` on miss/foreign record."""
    point = cache.get(key)
    if point is None:
        return None
    meta = cache.get_meta(key)
    if not meta or meta.get("kind") != _META_KIND:
        return None
    try:
        report = ChaosReport.from_dict(meta["report"])
    except (KeyError, TypeError, ValueError):
        return None  # poisoned meta: fall through to re-simulation
    return ChaosOutcome(point=point, report=report)


def _describe_chaos(task: ChaosTask) -> str:
    return f"{task.policy}/{'hardened' if task.hardened else 'fairweather'}"


def _store_chaos(run_cache, key: str, task: ChaosTask, outcome: ChaosOutcome) -> None:
    run_cache.put(
        key,
        outcome.point,
        meta={
            "kind": _META_KIND,
            "workload": getattr(task.workload, "name", ""),
            "report": outcome.report.to_dict(),
        },
    )


def run_chaos_sweep(
    tasks: Sequence[ChaosTask],
    *,
    jobs: Optional[int] = None,
    use_cache: Union[bool, object] = False,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
    backend: Union[str, ExecBackend, None] = None,
    retry: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[SweepEvent], None]] = None,
    n_workers=_UNSET,
    cache=_UNSET,
) -> List[ChaosOutcome]:
    """Run chaos tasks, preserving input order.

    The chaos counterpart of :func:`repro.analysis.parallel.run_sweep`,
    with the identical keyword-only signature (asserted
    parameter-for-parameter in the tests): same ``jobs`` convention
    (``None`` = serial in-process, ``0`` = one worker per core, ``N`` =
    N workers), same ``use_cache``/``cache_dir`` resolution, same
    ``tracer`` semantics (installed as the active tracer, one wall-clock
    span per executed task, forces serial execution with a
    ``UserWarning`` when overriding), same ``backend``/``retry``
    execution substrate (:mod:`repro.exec`), same streamed
    ``on_result`` :class:`~repro.analysis.parallel.SweepEvent` delivery,
    same deprecated ``n_workers``/``cache`` shims, same failure
    collection (:class:`~repro.analysis.parallel.SweepError` with
    attempt histories after everything has been attempted), and the
    same cache contract (stored outcomes short-circuit, fresh outcomes
    persist on completion, so interrupted sweeps resume).
    """
    return execute_sweep(
        tasks,
        caller="run_chaos_sweep",
        execute=_execute_chaos,
        describe=_describe_chaos,
        key_of=chaos_task_key,
        lookup=_cached_outcome,
        store=_store_chaos,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        tracer=tracer,
        backend=backend,
        retry=retry,
        on_result=on_result,
        n_workers=n_workers,
        cache=cache,
    )
