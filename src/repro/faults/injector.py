"""Drives a :class:`~repro.faults.spec.FaultPlan` against a live cluster.

One :class:`FaultInjector` per run.  :meth:`install` arms the hardware
(power gating on nodes with crash faults) and spawns one engine process
per fault; each process sleeps to its activation time, flips the
hardware-level switch, and — for faults with a duration — sleeps again
and flips it back.  All state lives at the hardware layer
(:class:`~repro.hardware.node.NodeFaultState`, ``SimCPU.dvfs_stuck``,
fabric latency penalties), so neither the governor nor the telemetry
sampler imports this module: defenders only ever see the *symptoms*.

The injector keeps a ``timeline`` of every applied/cleared event for
reporting and for the identical-seeds-identical-timelines guarantee.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, List, Tuple

from repro.hardware.cluster import Cluster
from repro.obs.tracer import active_tracer
from repro.sim.events import Event

from repro.faults.spec import (
    DvfsStuck,
    FaultPlan,
    FaultSpec,
    LinkDegraded,
    NodeCrash,
    TelemetryDropout,
    TelemetryNoise,
)

__all__ = ["FaultInjector"]


def _noise_transform(
    spec: TelemetryNoise, seed: int
) -> Callable[[float, float], float]:
    """Seeded ``(true_watts, now) -> observed_watts`` perturbation.

    The stream is keyed off the plan seed plus the spec's identity, and
    advances once per reading in sampling order — deterministic because
    the simulation itself is.
    """
    rng = random.Random(f"faultnoise/{seed}/{spec.node_id}/{spec.at}")

    def observe(true_watts: float, now: float) -> float:
        observed = true_watts + rng.gauss(0.0, spec.sigma_watts)
        if spec.spike_probability and rng.random() < spec.spike_probability:
            observed += spec.spike_watts
        return max(0.0, observed)

    return observe


class FaultInjector:
    """Schedules a plan's faults through the cluster's sim engine."""

    def __init__(self, cluster: Cluster, plan: FaultPlan):
        if plan.max_node_id >= cluster.n_nodes:
            raise ValueError(
                f"plan references node {plan.max_node_id} but the cluster "
                f"has {cluster.n_nodes} nodes"
            )
        self.cluster = cluster
        self.plan = plan
        #: (time, description) log of every applied/cleared fault event
        self.timeline: List[Tuple[float, str]] = []
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Arm the hardware and spawn one driver process per fault.

        Call after the cluster is built and before the job runs; faults
        whose activation time is already in the past fire immediately.
        """
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        for fault in self.plan.faults:
            if isinstance(fault, NodeCrash):
                self.cluster.nodes[fault.node_id].cpu.enable_power_gating()
        for index, fault in enumerate(self.plan.faults):
            self.cluster.engine.process(
                self._drive(fault),
                name=f"fault-{index}-{type(fault).__name__}-n{fault.node_id}",
            )

    # ------------------------------------------------------------------
    def _drive(self, fault: FaultSpec) -> Generator[Event, object, None]:
        engine = self.cluster.engine
        if fault.at > engine.now:
            yield engine.timeout(fault.at - engine.now)
        self._apply(fault)
        clears_at = fault.clears_at
        if clears_at is None:
            return
        if clears_at > engine.now:
            yield engine.timeout(clears_at - engine.now)
        self._clear(fault)

    def _log(self, verb: str, fault: FaultSpec) -> None:
        now = self.cluster.engine.now
        self.timeline.append(
            (now, f"{verb} {type(fault).__name__} node={fault.node_id}")
        )
        tracer = active_tracer()
        if tracer.enabled:
            tracer.instant(
                verb, "fault", fault.node_id, now,
                fault=type(fault).__name__,
            )

    def _apply(self, fault: FaultSpec) -> None:
        node = self.cluster.nodes[fault.node_id]
        if isinstance(fault, NodeCrash):
            node.cpu.power_off()
        elif isinstance(fault, DvfsStuck):
            node.cpu.dvfs_stuck = True
        elif isinstance(fault, TelemetryDropout):
            node.faults.telemetry_dark = True
        elif isinstance(fault, TelemetryNoise):
            node.faults.power_noise = _noise_transform(fault, self.plan.seed)
        elif isinstance(fault, LinkDegraded):
            self.cluster.fabric.set_link_latency_penalty(
                fault.node_id, fault.extra_latency
            )
        else:  # pragma: no cover - new kinds must be wired explicitly
            raise TypeError(f"unknown fault spec {type(fault).__name__}")
        self._log("apply", fault)

    def _clear(self, fault: FaultSpec) -> None:
        node = self.cluster.nodes[fault.node_id]
        if isinstance(fault, NodeCrash):
            node.cpu.power_on()  # boots at the ladder's fastest point
        elif isinstance(fault, DvfsStuck):
            node.cpu.dvfs_stuck = False
        elif isinstance(fault, TelemetryDropout):
            node.faults.telemetry_dark = False
        elif isinstance(fault, TelemetryNoise):
            node.faults.power_noise = None
        elif isinstance(fault, LinkDegraded):
            self.cluster.fabric.set_link_latency_penalty(fault.node_id, 0.0)
        self._log("clear", fault)
