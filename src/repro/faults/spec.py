"""Declarative, seed-driven fault plans for the simulated cluster.

The simulator is deliberately free of wall-clock and RNG dependence, so
faults cannot "just happen" — they are *scheduled*.  A
:class:`FaultPlan` is an immutable list of :class:`FaultSpec` records,
each naming a node, an activation time, and (usually) a duration.  Two
ways to build one:

* **declaratively** — list the exact faults a test or drill needs;
* **rate-driven** — :meth:`FaultPlan.from_reliability` samples crash
  times from a Poisson process whose rate is the
  :class:`~repro.hardware.reliability.ReliabilityModel`'s annual failure
  rate scaled to simulated time (an ``acceleration`` factor compresses
  years of failures into seconds of simulation), using
  ``random.Random`` streams derived from the plan seed.  Identical seeds
  reproduce identical fault timelines, on any machine.

Every spec is a frozen dataclass, so a plan participates in
:func:`repro.cache.keys.canonical_encode` and therefore in run-cache
keying: chaos sweeps are cached and resumable like every other sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.hardware.reliability import ReliabilityModel
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "SECONDS_PER_YEAR",
    "NodeCrash",
    "DvfsStuck",
    "TelemetryDropout",
    "TelemetryNoise",
    "LinkDegraded",
    "FaultSpec",
    "FaultPlan",
    "acceleration_for",
]

#: Julian-year seconds; converts the reliability model's annual rates.
SECONDS_PER_YEAR = 365.25 * 24.0 * 3600.0


@dataclass(frozen=True)
class _NodeFault:
    """Common shape: a fault pinned to one node at one sim time."""

    node_id: int
    at: float  #: activation time (sim seconds)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        check_nonnegative("at", self.at)

    @property
    def clears_at(self) -> Optional[float]:
        """When the fault deactivates (``None`` = never)."""
        duration = getattr(self, "duration", None)
        if duration is None:
            return None
        return self.at + duration


@dataclass(frozen=True)
class NodeCrash(_NodeFault):
    """Fail-stop crash: the node freezes and draws 0 W.

    With a ``downtime`` the node restarts after it — booting at the
    ladder's **fastest** point, with whatever ceiling the governor had
    applied gone (the reboot-at-max hazard).  The rank's in-flight work
    resumes where it stopped: an instant checkpoint-restart
    approximation, so lost work is modelled as pure downtime.
    ``downtime=None`` never restarts — only safe for workloads that do
    not synchronise with the dead rank, otherwise the job deadlocks
    (documented in docs/FAULTS.md).
    """

    downtime: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.downtime is not None:
            check_positive("downtime", self.downtime)

    @property
    def clears_at(self) -> Optional[float]:
        if self.downtime is None:
            return None
        return self.at + self.downtime


@dataclass(frozen=True)
class DvfsStuck(_NodeFault):
    """The DVFS regulator drops every transition request on the floor.

    The caller (governor, daemon, application) *believes* its switch
    happened; the clock stays wherever it was.  The dangerous direction
    is stuck-high: a cap application that silently fails.
    """

    duration: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)


@dataclass(frozen=True)
class TelemetryDropout(_NodeFault):
    """The node's monitoring agent goes dark; the node keeps running.

    The cluster sampler returns no window sample for the node, but it
    still draws power and still accepts frequency commands — the
    control path is separate from the telemetry path.
    """

    duration: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)


@dataclass(frozen=True)
class TelemetryNoise(_NodeFault):
    """Noisy / outlier power readings (ACPI- and Baytech-meter style).

    While active, the node's reported window average is perturbed with
    seeded Gaussian noise of ``sigma_watts`` plus, with probability
    ``spike_probability`` per window, an outlier spike of
    ``spike_watts``.  Readings are clamped at 0.  The perturbation
    stream derives from the plan seed, so identical plans produce
    identical noisy readings.
    """

    duration: float = 1.0
    sigma_watts: float = 1.0
    spike_watts: float = 0.0
    spike_probability: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)
        check_nonnegative("sigma_watts", self.sigma_watts)
        check_nonnegative("spike_watts", self.spike_watts)
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError(
                "spike_probability must be in [0, 1], "
                f"got {self.spike_probability}"
            )


@dataclass(frozen=True)
class LinkDegraded(_NodeFault):
    """A flaky link: extra one-way latency on every transfer touching
    the node (as sender or receiver) for the duration."""

    duration: float = 1.0
    extra_latency: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)
        check_positive("extra_latency", self.extra_latency)


FaultSpec = Union[
    NodeCrash, DvfsStuck, TelemetryDropout, TelemetryNoise, LinkDegraded
]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, cache-keyable schedule of faults.

    ``seed`` drives every derived randomness stream (noise perturbation,
    rate-driven sampling); two plans with equal fields behave
    identically down to the last perturbed sample.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        # Overlapping same-kind windows on one node are almost always a
        # plan bug (and would make apply/clear ordering ambiguous).
        by_stream: Dict[Tuple[type, int], List[FaultSpec]] = {}
        for fault in self.faults:
            by_stream.setdefault((type(fault), fault.node_id), []).append(
                fault
            )
        for (kind, node_id), stream in by_stream.items():
            stream.sort(key=lambda f: f.at)
            for prev, cur in zip(stream, stream[1:]):
                end = prev.clears_at
                if end is None or cur.at < end:
                    raise ValueError(
                        f"overlapping {kind.__name__} faults on node "
                        f"{node_id}: [{prev.at}, {end}) and at {cur.at}"
                    )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def for_node(self, node_id: int) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.node_id == node_id)

    @property
    def max_node_id(self) -> int:
        """Highest node id referenced (-1 for an empty plan)."""
        return max((f.node_id for f in self.faults), default=-1)

    def transition_times(self) -> Tuple[float, ...]:
        """Every activation and clearance instant, sorted, deduplicated.

        The chaos metrics use these as the moments a governor is allowed
        a bounded recovery latency after.
        """
        times = set()
        for fault in self.faults:
            times.add(fault.at)
            end = fault.clears_at
            if end is not None:
                times.add(end)
        return tuple(sorted(times))

    # ------------------------------------------------------------------
    @classmethod
    def from_reliability(
        cls,
        model: ReliabilityModel,
        n_nodes: int,
        horizon_s: float,
        *,
        seed: int = 0,
        acceleration: float = 1.0,
        downtime_s: float = 1.0,
        dropout_weight: float = 0.0,
        dropout_s: float = 1.0,
        stuck_weight: float = 0.0,
        stuck_s: float = 1.0,
    ) -> "FaultPlan":
        """Sample a plan from the reliability model's failure rate.

        Per node, crash times follow a Poisson process of rate
        ``annual_failure_rate × acceleration / SECONDS_PER_YEAR`` over
        ``[0, horizon_s)``; every crash restarts after ``downtime_s``.
        ``dropout_weight`` / ``stuck_weight`` add telemetry-dropout and
        stuck-DVFS processes at the given multiple of the crash rate
        (0 disables them).  Sampling uses one ``random.Random`` stream
        per (kind, node), keyed off ``seed`` — fully deterministic and
        independent of node count changes elsewhere in the plan.
        """
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        check_positive("horizon_s", horizon_s)
        check_positive("acceleration", acceleration)
        check_positive("downtime_s", downtime_s)
        check_nonnegative("dropout_weight", dropout_weight)
        check_nonnegative("stuck_weight", stuck_weight)
        rate = model.annual_failure_rate * acceleration / SECONDS_PER_YEAR
        faults: List[FaultSpec] = []

        def arrivals(kind: str, node: int, rate_s: float, hold: float):
            rng = random.Random(f"faultplan/{seed}/{kind}/{node}")
            t = rng.expovariate(rate_s) if rate_s > 0 else float("inf")
            while t < horizon_s:
                yield t
                # No overlapping windows on one node: the next arrival
                # can only begin after the current fault has cleared.
                t = t + hold + rng.expovariate(rate_s)

        for node in range(n_nodes):
            for t in arrivals("crash", node, rate, downtime_s):
                faults.append(NodeCrash(node, at=t, downtime=downtime_s))
            for t in arrivals("dropout", node, rate * dropout_weight, dropout_s):
                faults.append(TelemetryDropout(node, at=t, duration=dropout_s))
            for t in arrivals("stuck", node, rate * stuck_weight, stuck_s):
                faults.append(DvfsStuck(node, at=t, duration=stuck_s))

        faults.sort(key=lambda f: (f.at, f.node_id, type(f).__name__))
        return cls(faults=tuple(faults), seed=seed)


def acceleration_for(
    model: ReliabilityModel,
    n_nodes: int,
    horizon_s: float,
    expected_faults: float,
) -> float:
    """Acceleration factor giving ``expected_faults`` crashes per run.

    Inverts the Poisson mean ``rate × n_nodes × horizon``: at the
    returned acceleration, :meth:`FaultPlan.from_reliability` samples on
    average ``expected_faults`` crashes across the cluster over
    ``horizon_s`` simulated seconds.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    check_positive("horizon_s", horizon_s)
    check_positive("expected_faults", expected_faults)
    per_node_per_s = model.annual_failure_rate / SECONDS_PER_YEAR
    return expected_faults / (per_node_per_s * n_nodes * horizon_s)
