"""Declarative cluster specifications.

A :class:`ClusterSpec` is a frozen, hashable *description* of a cluster
— ordered groups of identical nodes (each a :class:`NodeSpec`: how many,
on which technology generation, with which core kind) plus an optional
fabric override — that :meth:`repro.hardware.cluster.Cluster.from_spec`
turns into live hardware.  Because the description is pure data it can
be canonically encoded into sweep cache keys (see
:func:`repro.cache.keys.task_key`), so sweeps over generations and node
mixes are cacheable and resumable like any other sweep.

Group order is meaningful: node ids are assigned sequentially across the
groups in declaration order, and MPI ranks map to node ids, so swapping
two groups changes which ranks land on which silicon.  The cache key is
therefore order-*sensitive* across groups (asserted in
``tests/cache/test_spec_keys.py``).

The default spec — one group, base technology, reference core, no ladder
override — describes exactly the paper's homogeneous Pentium-M cluster
and constructs bit-identically to the deprecated ``Cluster.build`` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.hardware.dvfs import DVFSTable, OperatingPoint, PENTIUM_M_1400
from repro.hardware.network import NetworkConfig
from repro.hardware.scaling import (
    CORE_O3,
    CoreKind,
    TECH_BASE,
    TechNode,
    scaled_table,
)

__all__ = ["ClusterSpec", "NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """One group of identical nodes in a :class:`ClusterSpec`.

    Parameters
    ----------
    count:
        How many nodes this group contributes (>= 1).
    tech:
        Technology generation; the group's ladder and power model are
        the base platform ported to it via
        :func:`~repro.hardware.scaling.scaled_table` /
        :func:`~repro.hardware.scaling.scaled_calibration`.
    core:
        Core microarchitecture (out-of-order reference or in-order).
    points:
        Optional base-ladder override as a tuple of operating points
        (*before* technology scaling).  ``None`` means the paper's
        Table-2 Pentium-M ladder.  A plain tuple — not a
        :class:`~repro.hardware.dvfs.DVFSTable` — so the spec stays
        canonically encodable.
    """

    count: int
    tech: TechNode = TECH_BASE
    core: CoreKind = CORE_O3
    points: Optional[Tuple[OperatingPoint, ...]] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.points is not None:
            object.__setattr__(self, "points", tuple(self.points))
            if not self.points:
                raise ValueError("points override must not be empty")

    def base_table(self) -> DVFSTable:
        """The group's base ladder before technology scaling."""
        if self.points is None:
            return PENTIUM_M_1400
        return DVFSTable(list(self.points))

    def ladder(self) -> DVFSTable:
        """The group's DVFS ladder, ported to its (tech, core) pair.

        Returns the shared :data:`~repro.hardware.dvfs.PENTIUM_M_1400`
        object itself for the default spec (identity, not a copy) — the
        keystone of the spec path's bit-identity with the legacy one.
        """
        return scaled_table(self.base_table(), self.tech, self.core)


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered sequence of node groups plus an optional fabric config.

    Node ids run sequentially across ``groups`` in declaration order;
    ``network=None`` defers to the calibration's fabric config at build
    time (so the default spec adds nothing over the legacy path).
    """

    groups: Tuple[NodeSpec, ...]
    network: Optional[NetworkConfig] = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise ValueError("a ClusterSpec needs at least one node group")

    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        count: int,
        *,
        tech: TechNode = TECH_BASE,
        core: CoreKind = CORE_O3,
        points: Optional[Tuple[OperatingPoint, ...]] = None,
        network: Optional[NetworkConfig] = None,
    ) -> "ClusterSpec":
        """A single-group spec of ``count`` identical nodes.

        With all defaults this is exactly the paper's homogeneous
        cluster — what the deprecated ``Cluster.build`` shim constructs.
        """
        return cls(
            groups=(NodeSpec(count=count, tech=tech, core=core, points=points),),
            network=network,
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count across all groups."""
        return sum(group.count for group in self.groups)

    @property
    def is_homogeneous(self) -> bool:
        return len(self.groups) == 1

    def cache_key(self) -> str:
        """Canonical JSON encoding for sweep cache keys.

        Stable across construction spelling (kwarg order, list vs tuple
        groups) but sensitive to group *order* — reordering groups moves
        ranks onto different silicon and must miss the cache.
        """
        from repro.cache.keys import canonical_json

        return canonical_json(self)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``512x16nm/itrs:o3 + 512x8nm/itrs:io``."""
        return " + ".join(
            f"{g.count}x{g.tech.label}:{g.core.name}" for g in self.groups
        )
