"""Emulation of the Linux ``/proc/stat`` CPU time accounting.

The ``cpuspeed`` daemon decides frequency from the CPU idle percentage
derived from ``/proc/stat`` (paper §3).  We reproduce the relevant
semantics: cumulative busy and idle jiffies per CPU, where busy-wait
polling (SPIN) counts as *busy* — the accounting artifact responsible for
cpuspeed's ineffectiveness on MPI codes.

Time in a blended state (e.g. PROTO at 40 % utilisation) is split
proportionally between busy and idle, matching how the kernel would sample
a process that alternates between short syscalls and halts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.activity import CpuActivity, is_busy_for_procstat
from repro.util.validation import check_fraction, check_nonnegative

__all__ = ["ProcStatSample", "ProcStat"]


@dataclass(frozen=True)
class ProcStatSample:
    """A snapshot of cumulative CPU time counters (seconds, not jiffies)."""

    busy: float
    idle: float

    @property
    def total(self) -> float:
        return self.busy + self.idle

    def utilization_since(self, earlier: "ProcStatSample") -> float:
        """Busy fraction over the interval between two snapshots.

        Returns 0.0 for an empty interval (daemon polled twice in the same
        tick), matching cpuspeed's defensive behaviour.
        """
        d_busy = self.busy - earlier.busy
        d_total = self.total - earlier.total
        if d_total <= 0:
            return 0.0
        return max(0.0, min(1.0, d_busy / d_total))


class ProcStat:
    """Cumulative busy/idle accounting for one (single-core) CPU.

    ``spin_counts_busy`` exists for the ablation experiment that asks
    "what if the kernel *could* see busy-waiting as idle?" — flipping it
    makes utilisation-driven governors (cpuspeed) effective on MPI codes,
    isolating the accounting artifact behind the paper's Fig-3 result.
    """

    def __init__(self, spin_counts_busy: bool = True) -> None:
        self._busy = 0.0
        self._idle = 0.0
        self.spin_counts_busy = spin_counts_busy

    def _is_busy(self, state: CpuActivity) -> bool:
        if state is CpuActivity.SPIN and not self.spin_counts_busy:
            return False
        return is_busy_for_procstat(state)

    def account(
        self,
        duration: float,
        state: CpuActivity,
        utilization: float = 1.0,
        floor: CpuActivity = CpuActivity.IDLE,
    ) -> None:
        """Charge ``duration`` seconds spent in ``state`` to the counters.

        ``utilization`` blends ``state`` with ``floor``; busy time is the
        busy-weighted mix of the two (a progress engine doing byte-work
        over a SPIN floor is 100 % busy in ``/proc/stat``).
        """
        check_nonnegative("duration", duration)
        check_fraction("utilization", utilization)
        busy_frac = utilization * float(self._is_busy(state)) + (
            1.0 - utilization
        ) * float(self._is_busy(floor))
        self._busy += duration * busy_frac
        self._idle += duration * (1.0 - busy_frac)

    def snapshot(self) -> ProcStatSample:
        """Current cumulative counters (what reading /proc/stat returns)."""
        return ProcStatSample(busy=self._busy, idle=self._idle)
