"""Hardware models of the paper's platform.

A 16-node Beowulf cluster of Pentium M 1.4 GHz laptops on 100 Mb switched
Ethernet, reconstructed as calibrated analytic models: the DVFS ladder of
paper Table 2, a CMOS ``P ∝ f·V²`` power model with per-activity factors,
a frequency-rescalable CPU execution engine with ``/proc/stat`` accounting,
a memory-hierarchy timing model, and a chunked store-and-forward Ethernet
fabric with per-link contention.
"""

from repro.hardware.activity import BUSY_STATES, CpuActivity, is_busy_for_procstat
from repro.hardware.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.cpu import SimCPU
from repro.hardware.dvfs import (
    DVFSTable,
    OperatingPoint,
    PENTIUM_M_1400,
    alpha_power_frequency,
)
from repro.hardware.memory import AccessCost, MemoryHierarchy, PENTIUM_M_MEMORY
from repro.hardware.network import NetworkConfig, NetworkFabric
from repro.hardware.node import Node
from repro.hardware.power import (
    ActivityFactors,
    CpuPowerModel,
    DEFAULT_FACTORS,
    NodePowerModel,
)
from repro.hardware.procstat import ProcStat, ProcStatSample
from repro.hardware.reliability import (
    ReliabilityModel,
    StrategyReliability,
    compare_reliability,
)
from repro.hardware.scaling import (
    CORE_IO,
    CORE_KINDS,
    CORE_O3,
    CoreKind,
    PROJECTIONS,
    TECH_BASE,
    TECH_NODES,
    TECH_SIZES_NM,
    TechNode,
    scaled_calibration,
    scaled_table,
    tech_node,
)
from repro.hardware.series import ClusterSeries, PowerSeries
from repro.hardware.spec import ClusterSpec, NodeSpec
from repro.hardware.timeline import EnergyCursor, PowerTimeline

__all__ = [
    "CpuActivity",
    "BUSY_STATES",
    "is_busy_for_procstat",
    "OperatingPoint",
    "DVFSTable",
    "PENTIUM_M_1400",
    "alpha_power_frequency",
    "ActivityFactors",
    "CpuPowerModel",
    "NodePowerModel",
    "DEFAULT_FACTORS",
    "PowerTimeline",
    "PowerSeries",
    "ClusterSeries",
    "EnergyCursor",
    "ProcStat",
    "ProcStatSample",
    "SimCPU",
    "AccessCost",
    "MemoryHierarchy",
    "PENTIUM_M_MEMORY",
    "NetworkConfig",
    "NetworkFabric",
    "Node",
    "Cluster",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "ReliabilityModel",
    "StrategyReliability",
    "compare_reliability",
    "CoreKind",
    "CORE_O3",
    "CORE_IO",
    "CORE_KINDS",
    "TechNode",
    "TECH_BASE",
    "TECH_NODES",
    "TECH_SIZES_NM",
    "PROJECTIONS",
    "tech_node",
    "scaled_table",
    "scaled_calibration",
    "NodeSpec",
    "ClusterSpec",
]
