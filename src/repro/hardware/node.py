"""A cluster node: CPU + memory + NIC + power accounting.

The node is the unit the paper measures (one laptop, one battery, one
Baytech outlet).  It wires the CPU's activity changes and the fabric's NIC
activity into a ground-truth :class:`~repro.hardware.timeline.PowerTimeline`
that the emulated instruments sample.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cpu import SimCPU
from repro.hardware.dvfs import DVFSTable
from repro.hardware.memory import MemoryHierarchy
from repro.hardware.power import NodePowerModel
from repro.hardware.procstat import ProcStat
from repro.hardware.timeline import PowerTimeline
from repro.sim.engine import Engine
from repro.sim.trace import NullRecorder, TraceRecorder

__all__ = ["Node"]


class Node:
    """One simulated laptop of the Beowulf cluster."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        table: DVFSTable,
        power_model: NodePowerModel,
        memory: MemoryHierarchy,
        spin_block_threshold: float = 0.005,
        trace: Optional[TraceRecorder] = None,
        spin_counts_busy: bool = True,
    ):
        self.engine = engine
        self.node_id = node_id
        self.table = table
        self.power_model = power_model
        self.memory = memory
        self.trace = trace if trace is not None else NullRecorder()

        self.procstat = ProcStat(spin_counts_busy=spin_counts_busy)
        self.cpu = SimCPU(
            engine,
            table,
            procstat=self.procstat,
            on_change=self._update_power,
            spin_block_threshold=spin_block_threshold,
        )
        self._nic_active = False
        self.timeline = PowerTimeline(
            start_time=engine.now, initial_power=self._current_power()
        )

    # ------------------------------------------------------------------
    @property
    def nic_active(self) -> bool:
        return self._nic_active

    def set_nic_active(self, active: bool) -> None:
        """Fabric callback: the node's tx/rx activity flipped."""
        if active == self._nic_active:
            return
        self._nic_active = active
        self._update_power()

    def _current_power(self) -> float:
        return self.power_model.power(
            self.cpu.operating_point,
            self.cpu.state,
            self.cpu.utilization,
            nic_active=self._nic_active,
            floor=self.cpu.floor,
        )

    def _update_power(self) -> None:
        watts = self._current_power()
        self.timeline.set_power(self.engine.now, watts)
        self.trace.record(
            self.engine.now,
            "node.power",
            node=self.node_id,
            watts=round(watts, 6),
            state=str(self.cpu.state),
            mhz=self.cpu.frequency / 1e6,
        )

    def finalize(self) -> None:
        """Close open accounting segments at the end of a run."""
        self.cpu.finalize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.node_id} f={self.cpu.frequency / 1e6:.0f}MHz>"
