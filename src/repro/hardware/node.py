"""A cluster node: CPU + memory + NIC + power accounting.

The node is the unit the paper measures (one laptop, one battery, one
Baytech outlet).  It wires the CPU's activity changes and the fabric's NIC
activity into a ground-truth :class:`~repro.hardware.timeline.PowerTimeline`
that the emulated instruments sample.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware.cpu import SimCPU
from repro.hardware.dvfs import DVFSTable
from repro.hardware.memory import MemoryHierarchy
from repro.hardware.power import NodePowerModel
from repro.hardware.procstat import ProcStat
from repro.hardware.timeline import PowerTimeline
from repro.sim.engine import Engine
from repro.sim.trace import NullRecorder, TraceRecorder

__all__ = ["Node", "NodeFaultState"]


class NodeFaultState:
    """Mutable sensor-fault switches the injector flips on a live node.

    Kept at the hardware layer so the telemetry sampler can consult it
    without knowing anything about :mod:`repro.faults`.  Both fields
    model *measurement* faults — the node itself keeps running:

    ``telemetry_dark``
        The node's monitoring agent is down; the cluster sampler reports
        no window sample for it (a crashed node is additionally dark
        because its agent died with it — see ``Node.telemetry_visible``).
    ``power_noise``
        Optional ``(true_watts, now) -> observed_watts`` transform
        applied to the node's reported window average (meter noise /
        outlier spikes).  ``None`` means the meter reads true.
    """

    def __init__(self) -> None:
        self.telemetry_dark: bool = False
        self.power_noise: Optional[Callable[[float, float], float]] = None


class Node:
    """One simulated laptop of the Beowulf cluster."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        table: DVFSTable,
        power_model: NodePowerModel,
        memory: MemoryHierarchy,
        spin_block_threshold: float = 0.005,
        trace: Optional[TraceRecorder] = None,
        spin_counts_busy: bool = True,
        cycles_per_work: float = 1.0,
    ):
        self.engine = engine
        self.node_id = node_id
        self.table = table
        self.power_model = power_model
        self.memory = memory
        self.trace = trace if trace is not None else NullRecorder()

        self.procstat = ProcStat(spin_counts_busy=spin_counts_busy)
        self.cpu = SimCPU(
            engine,
            table,
            procstat=self.procstat,
            on_change=self._update_power,
            spin_block_threshold=spin_block_threshold,
            cycles_per_work=cycles_per_work,
        )
        self._nic_active = False
        self.faults = NodeFaultState()
        self.timeline = PowerTimeline(
            start_time=engine.now, initial_power=self._current_power()
        )

    # ------------------------------------------------------------------
    @property
    def nic_active(self) -> bool:
        return self._nic_active

    def set_nic_active(self, active: bool) -> None:
        """Fabric callback: the node's tx/rx activity flipped."""
        if active == self._nic_active:
            return
        self._nic_active = active
        self._update_power()

    @property
    def telemetry_visible(self) -> bool:
        """Whether the node's monitoring agent is reporting samples."""
        return self.cpu.powered and not self.faults.telemetry_dark

    def _current_power(self) -> float:
        if not self.cpu.powered:
            # Suspended (orderly power-gate) keeps the platform's wake
            # state alive; a crash draws nothing at all.
            return self.power_model.gated_power if self.cpu.suspended else 0.0
        return self.power_model.power(
            self.cpu.operating_point,
            self.cpu.state,
            self.cpu.utilization,
            nic_active=self._nic_active,
            floor=self.cpu.floor,
            core_fraction=self.cpu.core_allocation,
        )

    def _update_power(self) -> None:
        watts = self._current_power()
        self.timeline.set_power(self.engine.now, watts)
        if self.trace.active:
            self.trace.record(
                self.engine.now,
                "node.power",
                node=self.node_id,
                watts=round(watts, 6),
                state=str(self.cpu.state),
                mhz=self.cpu.frequency / 1e6,
            )

    def finalize(self) -> None:
        """Close open accounting segments at the end of a run."""
        self.cpu.finalize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.node_id} f={self.cpu.frequency / 1e6:.0f}MHz>"
