"""The simulated DVS-capable CPU.

:class:`SimCPU` executes *work* for the single MPI rank pinned to its node
(the paper runs one process per laptop).  Work comes in three shapes:

* :meth:`run_cycles` — frequency-dependent computation: ``cycles`` of
  retirement work take ``cycles / f`` seconds, and a frequency change in
  the middle re-times the remainder (this is what makes DVS transitions
  mid-phase behave correctly under the cpuspeed daemon);
* :meth:`stall` — frequency-*independent* wall time in a given activity
  state (a DRAM stall, protocol work pinned to the NIC's pace);
* :meth:`wait_event` — MPICH-1-style message waiting: busy-poll (SPIN)
  up to a threshold, then block in the kernel (IDLE).

Every state, utilization, or frequency change closes an accounting segment:
the duration is charged to the node's ``/proc/stat`` emulation and the node
is notified so it can record the new power level on its timeline.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.hardware.activity import CpuActivity
from repro.hardware.dvfs import DVFSTable, OperatingPoint
from repro.hardware.procstat import ProcStat
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.util.validation import check_fraction, check_nonnegative

__all__ = ["SimCPU"]

#: Minimum leftover cycles treated as "done" (guards float dust when a
#: frequency change lands at the exact end of a work quantum).
_CYCLE_EPSILON = 1e-6


class _CycleWork:
    """One in-flight ``run_cycles`` quantum on the columnar fast path.

    The worker generator parks on ``done``; the CPU keeps a cancellable
    ``deadline`` timeout armed at the quantum's completion instant and
    re-arms it (after re-timing ``remaining`` with the scalar walk's
    exact arithmetic) whenever the frequency changes — so completion
    lands on the same float the scalar AnyOf race would produce, without
    racing any events while the frequency holds still.
    """

    __slots__ = ("done", "deadline", "remaining", "freq", "started")

    def __init__(self, engine: Engine, remaining: float):
        self.done = Event(engine)
        self.deadline: Optional[Event] = None
        self.remaining = remaining
        self.freq = 0.0
        self.started = 0.0


class SimCPU:
    """Single-core CPU with Enhanced-SpeedStep-style frequency scaling.

    Parameters
    ----------
    engine:
        Simulation engine.
    table:
        The DVFS ladder.
    procstat:
        The node's ``/proc/stat`` accounting sink.
    on_change:
        Callback invoked (with no arguments) after every accounting-relevant
        change; the node uses it to update its power timeline.
    spin_block_threshold:
        Seconds of busy-wait polling before a waiting receive falls back to
        blocking in the kernel.  ``inf`` reproduces a pure spin-wait MPI
        implementation, ``0`` a pure blocking one.
    cycles_per_work:
        Microarchitectural cost multiplier: how many of *this* core's
        cycles one unit of nominal (workload-counted) work takes.  1.0 is
        the calibrated out-of-order reference; an in-order core needs
        more (see :data:`repro.hardware.scaling.CORE_IO`).
    """

    def __init__(
        self,
        engine: Engine,
        table: DVFSTable,
        procstat: Optional[ProcStat] = None,
        on_change: Optional[Callable[[], None]] = None,
        spin_block_threshold: float = 0.005,
        cycles_per_work: float = 1.0,
    ):
        self.engine = engine
        self.table = table
        self.procstat = procstat if procstat is not None else ProcStat()
        self._on_change = on_change or (lambda: None)
        check_nonnegative("spin_block_threshold", spin_block_threshold)
        self.spin_block_threshold = spin_block_threshold
        if cycles_per_work <= 0:
            raise ValueError(f"cycles_per_work must be > 0, got {cycles_per_work}")
        self.cycles_per_work = cycles_per_work

        self._point: OperatingPoint = table.fastest
        self._inflight: List[_CycleWork] = []
        self._state: CpuActivity = CpuActivity.IDLE
        self._utilization: float = 1.0
        self._floor: CpuActivity = CpuActivity.IDLE
        self._segment_start: float = engine.now
        self._freq_event: Event = engine.event()
        #: cumulative number of completed frequency transitions
        self.transition_count: int = 0
        # Fault-injection state (repro.faults).  Both default to the
        # fault-free fast path: run_cycles/stall race no extra events and
        # set_frequency never refuses unless an injector arms them.
        self._powered: bool = True
        self._gated: bool = False
        self._suspended: bool = False
        self._power_restored: Event = engine.event()
        #: powered-core fraction (repro.powercap's vertical knob): work
        #: throughput and dynamic CPU power both scale by it.  1.0 (all
        #: cores) is the exact no-op — ``f × 1.0 == f`` bitwise — so
        #: full-core runs are float-identical to a scale-free CPU.
        self._core_scale: float = 1.0
        #: when True, P-state transition requests are silently dropped
        #: (a stuck DVFS regulator); armed by the fault injector.
        self.dvfs_stuck: bool = False
        #: cumulative number of refused/dropped transition requests
        self.refused_transitions: int = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def operating_point(self) -> OperatingPoint:
        return self._point

    @property
    def frequency(self) -> float:
        """Current clock frequency in Hz."""
        return self._point.frequency

    @property
    def state(self) -> CpuActivity:
        return self._state

    @property
    def utilization(self) -> float:
        return self._utilization

    @property
    def floor(self) -> CpuActivity:
        """The state blended with ``state`` for the idle share of time."""
        return self._floor

    @property
    def freq_changed(self) -> Event:
        """Event firing at the next P-state transition (for wait loops)."""
        return self._freq_event

    @property
    def powered(self) -> bool:
        """False while the node is failed-stop (crashed, drawing 0 W)."""
        return self._powered

    @property
    def suspended(self) -> bool:
        """True while the node is *intentionally* power-gated.

        Distinguishes an orderly :meth:`suspend` (platform keeps suspend
        power, wake state retained) from a crash :meth:`power_off`
        (drawing nothing).  Only meaningful while ``powered`` is False.
        """
        return self._suspended

    @property
    def core_allocation(self) -> float:
        """Powered-core fraction in (0, 1] (1.0 = all cores)."""
        return self._core_scale

    @property
    def effective_frequency(self) -> float:
        """Work-retirement rate in Hz: clock × powered-core fraction."""
        return self._point.frequency * self._core_scale

    @property
    def power_restored(self) -> Event:
        """Event firing at the next :meth:`power_on` (for gated waits)."""
        return self._power_restored

    # ------------------------------------------------------------------
    # accounting plumbing
    # ------------------------------------------------------------------
    def _close_segment(self) -> None:
        now = self.engine.now
        duration = now - self._segment_start
        if duration > 0:
            self.procstat.account(
                duration, self._state, self._utilization, self._floor
            )
        self._segment_start = now

    def set_state(
        self,
        state: CpuActivity,
        utilization: float = 1.0,
        floor: CpuActivity = CpuActivity.IDLE,
    ) -> None:
        """Switch activity state (closing the accounting segment)."""
        check_fraction("utilization", utilization)
        if (
            state is self._state
            and utilization == self._utilization
            and floor is self._floor
        ):
            return
        self._close_segment()
        self._state = state
        self._utilization = utilization
        self._floor = floor
        self._on_change()

    def set_frequency(self, point: OperatingPoint) -> None:
        """Instantaneous P-state switch.

        Transition *latency* (the µs the core is unavailable) is modelled
        by the CPUFreq layer in :mod:`repro.dvs.cpufreq`, which is the only
        sanctioned caller in experiments; tests may call this directly.
        """
        if self.dvfs_stuck or not self._powered:
            # A stuck regulator (or a crashed node) drops the request on
            # the floor: the caller *believes* the switch happened.  The
            # governor's stuck-frequency detection exists for exactly this.
            self.refused_transitions += 1
            return
        if point.frequency == self._point.frequency:
            return
        self.table.point_for(point.frequency)  # must be a legal point
        self._close_segment()
        self._point = point
        self.transition_count += 1
        self._on_change()
        # Wake anything racing work completion against a frequency change.
        old_event, self._freq_event = self._freq_event, self.engine.event()
        old_event.succeed(point)
        # Columnar fast path: re-time in-flight quanta at the new clock.
        self._retime_inflight()

    # ------------------------------------------------------------------
    # fail-stop power gating (repro.faults)
    # ------------------------------------------------------------------
    def enable_power_gating(self) -> None:
        """Arm crash support: work primitives start checking ``powered``.

        Gating is opt-in so fault-free simulations pay nothing for it —
        the injector arms every node that has a crash fault scheduled
        before the job starts.
        """
        self._gated = True

    def power_off(self) -> None:
        """Fail-stop: freeze execution and draw nothing until power_on.

        In-flight :meth:`run_cycles` / :meth:`stall` generators park on
        the power-restored event and resume where they left off — the
        instant-checkpoint-restart approximation (lost work is modelled
        as pure downtime).  Requires :meth:`enable_power_gating` first.
        """
        if not self._gated:
            raise RuntimeError(
                "power_off() without enable_power_gating(): running work "
                "would keep executing through the outage"
            )
        if not self._powered:
            return
        self._close_segment()
        self._powered = False
        self._on_change()
        # Wake in-flight work so it re-times and parks on power_restored.
        old_event, self._freq_event = self._freq_event, self.engine.event()
        old_event.succeed(None)
        self._retime_inflight()

    def suspend(self) -> None:
        """Orderly power-gate (the control plane's horizontal knob).

        Identical execution semantics to :meth:`power_off` — in-flight
        work parks on the power-restored event and resumes after
        :meth:`power_on` — but the platform stays in a suspend state:
        the node draws its model's ``gated_power`` instead of nothing
        (wake state is retained, so waking is a boot-latency penalty
        rather than a full reboot).  Requires
        :meth:`enable_power_gating` first, like a crash.
        """
        if not self._gated:
            raise RuntimeError(
                "suspend() without enable_power_gating(): running work "
                "would keep executing through the gate"
            )
        if not self._powered:
            return
        self._close_segment()
        self._powered = False
        self._suspended = True
        self._on_change()
        old_event, self._freq_event = self._freq_event, self.engine.event()
        old_event.succeed(None)
        self._retime_inflight()

    def power_on(self, boot_point: Optional[OperatingPoint] = None) -> None:
        """Restart after a fail-stop outage.

        Boots at ``boot_point`` — default the ladder's **fastest** point,
        the real-world reboot hazard: firmware comes up at full clock and
        whatever ceiling a governor had applied before the crash is gone.
        """
        if self._powered:
            return
        point = boot_point if boot_point is not None else self.table.fastest
        self.table.point_for(point.frequency)  # must be a legal point
        self._close_segment()
        self._powered = True
        self._suspended = False
        if point.frequency != self._point.frequency:
            self._point = point
            self.transition_count += 1
        self._on_change()
        old_event, self._power_restored = self._power_restored, self.engine.event()
        old_event.succeed(None)

    def set_core_allocation(self, fraction: float) -> None:
        """Set the powered-core fraction (the vertical knob).

        Behaves like a P-state change for in-flight work: the accounting
        segment closes, waiters racing completion against rate changes
        wake, and armed quanta re-time at the new effective rate using
        the exact scalar expression — so a mid-quantum reallocation
        lands completion on the same float the scalar walk computes.
        Setting 1.0 restores full throughput and full dynamic power.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"core allocation must be in (0, 1], got {fraction}"
            )
        if fraction == self._core_scale:
            return
        self._close_segment()
        self._core_scale = fraction
        self._on_change()
        old_event, self._freq_event = self._freq_event, self.engine.event()
        old_event.succeed(self._point)
        self._retime_inflight()

    def finalize(self) -> None:
        """Close the open accounting segment (call at end of simulation)."""
        self._close_segment()

    # ------------------------------------------------------------------
    # work primitives (generators — use with ``yield from``)
    # ------------------------------------------------------------------
    def run_cycles(
        self,
        cycles: float,
        state: CpuActivity = CpuActivity.ACTIVE,
    ) -> Generator[Event, object, None]:
        """Execute ``cycles`` of frequency-dependent work.

        The work takes ``cycles / f`` seconds at the current frequency; a
        mid-run P-state change re-times the remainder at the new frequency,
        exactly as a real core slows down under the daemon's feet.

        On a cancellable (columnar) engine this takes the bulk fast path:
        one armed completion per quantum, re-timed in place on frequency
        and power events, instead of a timeout-vs-freq_event ``AnyOf``
        race per scheduling round.  Completion instants are float-exact
        matches of the scalar race (the re-timing arithmetic is the same
        expression the scalar loop evaluates on wake-up).
        """
        check_nonnegative("cycles", cycles)
        if self.cycles_per_work != 1.0:
            # Workloads count *nominal* work; an in-order core pays more
            # cycles for it.  Scaled once here so both the bulk and the
            # scalar paths (and mid-run re-timing) see the same total.
            cycles = cycles * self.cycles_per_work
        if self.engine.supports_cancel:
            yield from self._run_cycles_bulk(float(cycles), state)
            return
        remaining = float(cycles)
        self.set_state(state, 1.0)
        try:
            while remaining > _CYCLE_EPSILON:
                if not self._powered:
                    # Fail-stop outage: park (accounted idle, drawing
                    # nothing) and resume the remainder after restart.
                    self.set_state(CpuActivity.IDLE, 1.0)
                    yield self._power_restored
                    self.set_state(state, 1.0)
                    continue
                freq = self._point.frequency * self._core_scale
                started = self.engine.now
                done = self.engine.timeout(remaining / freq)
                change = self._freq_event
                yield self.engine.any_of([done, change])
                if done.processed:
                    remaining = 0.0
                else:
                    remaining -= (self.engine.now - started) * freq
        finally:
            self.set_state(CpuActivity.IDLE, 1.0)

    def _run_cycles_bulk(
        self,
        remaining: float,
        state: CpuActivity,
    ) -> Generator[Event, object, None]:
        """Columnar fast path for :meth:`run_cycles` (see its docstring)."""
        self.set_state(state, 1.0)
        try:
            while remaining > _CYCLE_EPSILON:
                if not self._powered:
                    self.set_state(CpuActivity.IDLE, 1.0)
                    yield self._power_restored
                    self.set_state(state, 1.0)
                    continue
                work = _CycleWork(self.engine, remaining)
                self._arm_work(work)
                self._inflight.append(work)
                yield work.done
                remaining = work.remaining
        finally:
            self.set_state(CpuActivity.IDLE, 1.0)

    def _arm_work(self, work: _CycleWork) -> None:
        work.freq = self._point.frequency * self._core_scale
        work.started = self.engine.now
        deadline = self.engine.timeout(work.remaining / work.freq)
        work.deadline = deadline

        def complete(_event: Event, work: _CycleWork = work) -> None:
            self._inflight.remove(work)
            work.remaining = 0.0
            work.done.succeed(None)

        deadline.callbacks.append(complete)

    def _retime_inflight(self) -> None:
        """Re-time armed quanta after a frequency or power transition.

        Uses the exact scalar expression
        ``remaining -= (now - started) * freq`` so the re-armed deadline
        lands on the same float instant the scalar wake-and-reschedule
        walk computes.  During an outage the quantum's waiter is woken
        instead (it parks on ``power_restored``, like the scalar loop).
        """
        if not self._inflight:
            return
        engine = self.engine
        now = engine.now
        works, self._inflight = self._inflight, []
        for work in works:
            work.remaining -= (now - work.started) * work.freq
            engine.cancel(work.deadline)
            if self._powered and work.remaining > _CYCLE_EPSILON:
                self._arm_work(work)
                self._inflight.append(work)
            else:
                if work.remaining <= _CYCLE_EPSILON:
                    work.remaining = 0.0
                work.done.succeed(None)

    def stall(
        self,
        duration: float,
        state: CpuActivity = CpuActivity.MEMSTALL,
        utilization: float = 1.0,
    ) -> Generator[Event, object, None]:
        """Spend frequency-independent wall time in ``state``.

        Used for DRAM stalls (latency set by the memory, not the clock) and
        for protocol work paced by the NIC (``state=PROTO`` with the
        utilization the CPU needs to keep the link fed).
        """
        check_nonnegative("duration", duration)
        self.set_state(state, utilization)
        try:
            if not self._gated:
                if duration > 0:
                    yield self.engine.timeout(duration)
                return
            # Crash-aware path (armed by the fault injector): the stall
            # races the power-cut wake-up so an outage suspends the
            # remaining wall time instead of silently elapsing through it.
            remaining = float(duration)
            while remaining > 0:
                if not self._powered:
                    self.set_state(CpuActivity.IDLE, 1.0)
                    yield self._power_restored
                    self.set_state(state, utilization)
                    continue
                started = self.engine.now
                done = self.engine.timeout(remaining)
                yield self.engine.any_of([done, self._freq_event])
                if done.processed:
                    break
                remaining -= self.engine.now - started
        finally:
            self.set_state(CpuActivity.IDLE, 1.0)

    def wait_event(
        self,
        event: Event,
        spin_threshold: Optional[float] = None,
    ) -> Generator[Event, object, object]:
        """Wait for ``event`` the way MPICH-1 waits for a message.

        Busy-polls (SPIN — *busy* in ``/proc/stat``, ~40 % of active power)
        for up to ``spin_threshold`` seconds, then blocks in the kernel
        (IDLE).  Returns the event's value.
        """
        threshold = (
            self.spin_block_threshold if spin_threshold is None else spin_threshold
        )
        check_nonnegative("spin_threshold", threshold)
        self.set_state(CpuActivity.SPIN, 1.0)
        try:
            if threshold == float("inf"):
                yield event
                return event.value
            if threshold > 0:
                give_up = self.engine.timeout(threshold)
                yield self.engine.any_of([event, give_up])
                if event.processed:
                    return event.value
            self.set_state(CpuActivity.IDLE, 1.0)
            yield event
            return event.value
        finally:
            self.set_state(CpuActivity.IDLE, 1.0)
