"""Technology scaling: projected (freq, vdd) scaling across process nodes.

The paper's platform is one fixed technology generation (the 130 nm
Pentium M "Banias"); its central result — slack-driven DVS wins while
cpuspeed loses — was measured with the Table-2 ladder's generous voltage
headroom.  This module asks what happens to that ladder as the process
shrinks, using Lumos-style projection tables (45 → 8 nm, ITRS vs
conservative; see PAPERS.md on energy-aware petaflops cluster design):

* :class:`TechNode` — one (process size, projection) point carrying the
  voltage, frequency, power, and threshold-voltage scale factors
  relative to the 45 nm reference generation;
* :func:`scaled_table` — the Table-2 ladder ported to a generation:
  every :class:`~repro.hardware.dvfs.OperatingPoint` scales as
  ``(f · freq_scale, V · vdd_scale)`` and the ladder is then cut at a
  **Vth-bounded lower rail**.  The rail is ``Vth(tech) + guard`` where
  the guard band is an *absolute* margin (supply noise and process
  variation do not shrink with vdd) — this is the mechanism by which
  aggressive ITRS voltage scaling genuinely loses ladder rungs at small
  nodes while the conservative projection keeps all five;
* :class:`CoreKind` — in-order vs out-of-order microarchitectures
  (Lumos's io/o3 split): different peak power and cycles-per-work
  multipliers feeding
  :meth:`~repro.hardware.calibration.Calibration.node_power_model`;
* :func:`scaled_calibration` — the platform calibration ported to a
  (tech, core) pair: CPU peak power follows the projection's dynamic
  power scale times the core kind's factor; the frequency-independent
  platform base follows the square root of the power scale (uncore,
  DRAM refresh, and VRM losses scale slower than logic).

The 45 nm reference generation has unit scale factors, so a
:func:`scaled_table` / :func:`scaled_calibration` at the base tech node
returns its input **unchanged (the same object)** — the spec-built
cluster path is bit-identical to the legacy homogeneous path by
construction (asserted in ``tests/hardware/test_spec_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.hardware.calibration import Calibration
from repro.hardware.dvfs import DVFSTable, OperatingPoint
from repro.util.validation import check_positive

__all__ = [
    "BASE_VTH_V",
    "CORE_IO",
    "CORE_O3",
    "CORE_KINDS",
    "CoreKind",
    "PROJECTIONS",
    "TECH_BASE",
    "TECH_NODES",
    "TECH_SIZES_NM",
    "TechNode",
    "VOLTAGE_GUARD_V",
    "scaled_calibration",
    "scaled_table",
    "tech_node",
]

#: Projection families: ITRS roadmap targets vs conservative scaling.
PROJECTIONS: Tuple[str, ...] = ("itrs", "cons")

#: Process sizes with projection data, largest (the reference) first.
TECH_SIZES_NM: Tuple[int, ...] = (45, 32, 22, 16, 11, 8)

#: Threshold voltage of the reference generation in the *ladder's* frame:
#: the alpha-power-law fit (Eq. 1, α=1) through the Table-2 endpoints
#: (1400 MHz @ 1.484 V, 600 MHz @ 0.956 V) solves to Vt ≈ 0.755 V.
BASE_VTH_V = 0.7547

#: Absolute supply-noise / variation guard band above Vth (volts).  It
#: does **not** scale with vdd — which is exactly why the usable ladder
#: shrinks under aggressive voltage scaling: the window between
#: ``Vth + guard`` and the (shrinking) nominal vdd narrows in absolute
#: terms until the slow rungs fall out of it.
VOLTAGE_GUARD_V = 0.18

# Lumos-style projection tables relative to the 45 nm generation
# (vdd/freq/power from the ITRS 2010 FEP tables vs conservative
# estimates; vth from sheet 2009_FEP2-HPDevice, normalised to 45 nm).
_VDD_SCALE = {
    "itrs": {45: 1.0, 32: 0.93, 22: 0.84, 16: 0.75, 11: 0.68, 8: 0.62},
    "cons": {45: 1.0, 32: 0.93, 22: 0.88, 16: 0.86, 11: 0.84, 8: 0.84},
}
_FREQ_SCALE = {
    "itrs": {45: 1.0, 32: 1.09, 22: 2.38, 16: 3.21, 11: 4.17, 8: 3.85},
    "cons": {45: 1.0, 32: 1.10, 22: 1.19, 16: 1.25, 11: 1.30, 8: 1.34},
}
_POWER_SCALE = {
    "itrs": {45: 1.0, 32: 0.66, 22: 0.54, 16: 0.38, 11: 0.25, 8: 0.12},
    "cons": {45: 1.0, 32: 0.71, 22: 0.52, 16: 0.39, 11: 0.29, 8: 0.22},
}
_VTH_BASE = {45: 0.3201, 32: 0.297, 22: 0.2673, 16: 0.2409, 11: 0.2178, 8: 0.198}


@dataclass(frozen=True)
class TechNode:
    """One technology generation under one projection family.

    All scale factors are relative to the 45 nm reference generation
    (unit factors), in which frame the paper's Table-2 ladder is taken
    as the baseline processor.
    """

    nm: int  #: process size in nanometres
    projection: str  #: ``"itrs"`` or ``"cons"``
    vdd_scale: float  #: nominal supply voltage vs the reference
    freq_scale: float  #: nominal clock frequency vs the reference
    power_scale: float  #: dynamic power at nominal (f, V) vs the reference
    vth_scale: float  #: threshold voltage vs the reference

    def __post_init__(self) -> None:
        if self.projection not in PROJECTIONS:
            raise ValueError(
                f"unknown projection {self.projection!r}; "
                f"valid projections: {', '.join(PROJECTIONS)}"
            )
        check_positive("nm", self.nm)
        check_positive("vdd_scale", self.vdd_scale)
        check_positive("freq_scale", self.freq_scale)
        check_positive("power_scale", self.power_scale)
        check_positive("vth_scale", self.vth_scale)

    @property
    def is_base(self) -> bool:
        """Whether this is the unit-factor reference generation."""
        return (
            self.vdd_scale == 1.0
            and self.freq_scale == 1.0
            and self.power_scale == 1.0
            and self.vth_scale == 1.0
        )

    @property
    def vth_v(self) -> float:
        """Absolute threshold voltage in the ladder's frame (volts)."""
        return BASE_VTH_V * self.vth_scale

    @property
    def min_voltage(self) -> float:
        """The Vth-bounded lower rail: minimum usable supply voltage."""
        return self.vth_v + VOLTAGE_GUARD_V

    @property
    def platform_power_scale(self) -> float:
        """Scale factor for the frequency-independent platform base.

        Uncore, DRAM refresh, disk, and PSU losses do not ride the logic
        shrink; ``sqrt(power_scale)`` is the documented middle ground
        (exactly 1.0 at the reference generation).
        """
        return self.power_scale**0.5

    @property
    def label(self) -> str:
        return f"{self.nm}nm/{self.projection}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def tech_node(nm: int, projection: str = "itrs") -> TechNode:
    """The :class:`TechNode` for ``(nm, projection)`` from the tables."""
    if projection not in PROJECTIONS:
        raise ValueError(
            f"unknown projection {projection!r}; "
            f"valid projections: {', '.join(PROJECTIONS)}"
        )
    if nm not in _VTH_BASE:
        raise ValueError(
            f"no projection data for {nm} nm; "
            f"available sizes: {', '.join(str(s) for s in TECH_SIZES_NM)}"
        )
    return TechNode(
        nm=nm,
        projection=projection,
        vdd_scale=_VDD_SCALE[projection][nm],
        freq_scale=_FREQ_SCALE[projection][nm],
        power_scale=_POWER_SCALE[projection][nm],
        vth_scale=_VTH_BASE[nm] / _VTH_BASE[45],
    )


#: The unit-factor reference generation (45 nm, ITRS frame).
TECH_BASE = tech_node(45, "itrs")

#: Every (size, projection) point, itrs first, largest node first.
TECH_NODES: Tuple[TechNode, ...] = tuple(
    tech_node(nm, projection)
    for projection in PROJECTIONS
    for nm in TECH_SIZES_NM
)


@dataclass(frozen=True)
class CoreKind:
    """A core microarchitecture: in-order vs out-of-order.

    Factors are relative to the out-of-order reference (the Pentium M is
    an o3 core), following Lumos's io/o3 split (6.14 W vs 19.83 W peak,
    4.2 GHz vs 3.7 GHz nominal clock, ~1.6× IPC gap).
    """

    name: str
    power_factor: float  #: peak CPU power vs the o3 reference
    cycles_per_work: float  #: cycles needed per unit of nominal work
    freq_factor: float = 1.0  #: nominal clock vs the o3 reference

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a CoreKind needs a non-empty name")
        check_positive("power_factor", self.power_factor)
        check_positive("cycles_per_work", self.cycles_per_work)
        check_positive("freq_factor", self.freq_factor)

    @property
    def is_reference(self) -> bool:
        """Whether this core leaves the calibrated model untouched."""
        return (
            self.power_factor == 1.0
            and self.cycles_per_work == 1.0
            and self.freq_factor == 1.0
        )


#: Out-of-order reference core (what the paper's ladder describes).
CORE_O3 = CoreKind(name="o3", power_factor=1.0, cycles_per_work=1.0)

#: In-order core: ~0.31× peak power, ~1.14× clock, ~1.6× cycles/work.
CORE_IO = CoreKind(
    name="io", power_factor=0.31, cycles_per_work=1.6, freq_factor=1.135
)

#: name → core kind, for lookups and CLIs.
CORE_KINDS = {CORE_O3.name: CORE_O3, CORE_IO.name: CORE_IO}


def scaled_table(
    base: DVFSTable, tech: TechNode, core: CoreKind = CORE_O3
) -> DVFSTable:
    """Port a DVFS ladder to a technology generation (and core kind).

    Every operating point scales as ``(f · freq_scale · freq_factor,
    V · vdd_scale)``; points whose scaled voltage falls below the
    generation's Vth-bounded rail (:attr:`TechNode.min_voltage`) are
    dropped — the usable ladder genuinely shrinks where vdd scaling
    outruns the fixed guard band.  At the reference generation with the
    reference core the input table is returned unchanged (same object),
    which is what makes spec-built clusters bit-identical to the legacy
    path.

    Raises
    ------
    ValueError
        If even the fastest point falls below the rail — the projection
        cannot sustain the ladder's nominal point at all.
    """
    if tech.is_base and core.freq_factor == 1.0:
        return base
    freq_scale = tech.freq_scale * core.freq_factor
    points = [
        OperatingPoint(
            frequency=p.frequency * freq_scale,
            voltage=p.voltage * tech.vdd_scale,
        )
        for p in base.points
    ]
    rail = tech.min_voltage
    usable = [p for p in points if p.voltage >= rail]
    if not usable:
        raise ValueError(
            f"{tech.label}: nominal point {points[-1]} sits below the "
            f"Vth-bounded rail ({rail:.3f} V) — the ladder cannot be "
            "ported to this generation"
        )
    return DVFSTable(usable)


def scaled_calibration(
    calibration: Calibration, tech: TechNode, core: CoreKind = CORE_O3
) -> Calibration:
    """Port a platform calibration to a (tech, core) pair.

    ``cpu_max_power`` scales with the projection's dynamic power factor
    times the core kind's; ``base_power`` with
    :attr:`TechNode.platform_power_scale`.  At the reference (tech,
    core) the input calibration is returned unchanged (same object).
    """
    if tech.is_base and core.power_factor == 1.0:
        return calibration
    return calibration.with_overrides(
        cpu_max_power=calibration.cpu_max_power
        * tech.power_scale
        * core.power_factor,
        base_power=calibration.base_power * tech.platform_power_scale,
        gated_power=calibration.gated_power * tech.platform_power_scale,
    )
