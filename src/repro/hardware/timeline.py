"""Ground-truth power timeline of a node.

The simulator knows the exact instantaneous power of every node at every
moment (piecewise-constant between state changes).  :class:`PowerTimeline`
records those segments; energy over any interval is an exact integral.

The *measurement* layer (:mod:`repro.measurement`) never reads this
directly in experiments — it samples it through emulated instruments (ACPI
battery, Baytech meter) exactly the way the paper's PowerPack did, with the
corresponding quantization and refresh-rate error.  Tests compare the
instruments against this ground truth.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.util.validation import check_nonnegative

__all__ = ["PowerTimeline"]


class PowerTimeline:
    """Piecewise-constant power trace with exact energy integration."""

    def __init__(self, start_time: float = 0.0, initial_power: float = 0.0):
        check_nonnegative("initial_power", initial_power)
        self._times: List[float] = [start_time]
        self._watts: List[float] = [initial_power]

    # ------------------------------------------------------------------
    def set_power(self, time: float, watts: float) -> None:
        """Record that the node's power changed to ``watts`` at ``time``.

        Multiple changes at the same instant collapse to the last one.
        Out-of-order appends are a modelling bug and raise.
        """
        check_nonnegative("watts", watts)
        last_t = self._times[-1]
        if time < last_t:
            raise ValueError(
                f"power timeline must be appended in time order "
                f"(got t={time} after t={last_t})"
            )
        if time == last_t:
            self._watts[-1] = watts
            return
        if watts == self._watts[-1]:
            return  # no change; avoid zero-length bookkeeping
        self._times.append(time)
        self._watts.append(watts)

    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        return self._times[0]

    @property
    def last_change(self) -> float:
        return self._times[-1]

    def power_at(self, time: float) -> float:
        """Instantaneous power at ``time`` (watts)."""
        if time < self._times[0]:
            raise ValueError(f"t={time} precedes timeline start {self._times[0]}")
        idx = bisect.bisect_right(self._times, time) - 1
        return self._watts[idx]

    def energy(self, t0: float, t1: float) -> float:
        """Exact energy in joules consumed over ``[t0, t1]``.

        The final segment is treated as extending indefinitely (the node
        keeps drawing its last-known power), which is how a real meter
        would see it.
        """
        if t1 < t0:
            raise ValueError(f"energy interval reversed: [{t0}, {t1}]")
        if t0 < self._times[0]:
            raise ValueError(f"t0={t0} precedes timeline start {self._times[0]}")
        total = 0.0
        idx = bisect.bisect_right(self._times, t0) - 1
        cursor = t0
        while cursor < t1:
            seg_end = (
                self._times[idx + 1] if idx + 1 < len(self._times) else float("inf")
            )
            upto = min(seg_end, t1)
            total += self._watts[idx] * (upto - cursor)
            cursor = upto
            idx += 1
        return total

    def average_power(self, t0: float, t1: float) -> float:
        """Average power over ``[t0, t1]`` (Eq. 3: ``E = P_avg × D``)."""
        if t1 == t0:
            return self.power_at(t0)
        return self.energy(t0, t1) / (t1 - t0)

    def peak_power(self, t0: float, t1: float) -> float:
        """Maximum instantaneous power (watts) over ``[t0, t1]``.

        Piecewise-constant traces attain their maximum at segment starts,
        so only the segment active at ``t0`` and the change points inside
        the window need inspecting.
        """
        if t1 < t0:
            raise ValueError(f"peak interval reversed: [{t0}, {t1}]")
        if t0 < self._times[0]:
            raise ValueError(f"t0={t0} precedes timeline start {self._times[0]}")
        idx = bisect.bisect_right(self._times, t0) - 1
        peak = self._watts[idx]
        for i in range(idx + 1, len(self._times)):
            if self._times[i] > t1:
                break
            peak = max(peak, self._watts[i])
        return peak

    def change_times(self, t0: float, t1: float) -> List[float]:
        """The change points strictly inside ``(t0, t1]`` (for merging)."""
        lo = bisect.bisect_right(self._times, t0)
        hi = bisect.bisect_right(self._times, t1)
        return self._times[lo:hi]

    def segments(self) -> List[Tuple[float, float]]:
        """The ``(time, watts)`` change points, oldest first."""
        return list(zip(self._times, self._watts))

    def __len__(self) -> int:
        return len(self._times)
