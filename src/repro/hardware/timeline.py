"""Ground-truth power timeline of a node.

The simulator knows the exact instantaneous power of every node at every
moment (piecewise-constant between state changes).  :class:`PowerTimeline`
records those segments; energy over any interval is an exact integral.

The timeline has two phases.  *Recording* is the cheap append-only path
the simulator's writers hit (:meth:`PowerTimeline.set_power`); *querying*
goes through the columnar prefix-sum kernel
(:class:`~repro.hardware.series.PowerSeries`), materialised on demand by
:meth:`PowerTimeline.series` and invalidated automatically whenever a new
change point lands.  The scalar methods (``energy``, ``power_at``, …)
keep their historical signatures but delegate to the frozen view, so
every reader gets O(log n) queries; batch consumers should grab the
series once and use its vectorised APIs.

The *measurement* layer (:mod:`repro.measurement`) never reads this
directly in experiments — it samples it through emulated instruments (ACPI
battery, Baytech meter) exactly the way the paper's PowerPack did, with the
corresponding quantization and refresh-rate error.  Tests compare the
instruments against this ground truth.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.hardware.series import PowerSeries
from repro.util.validation import check_nonnegative

__all__ = ["EnergyCursor", "PowerTimeline"]


class PowerTimeline:
    """Piecewise-constant power trace with exact energy integration."""

    def __init__(self, start_time: float = 0.0, initial_power: float = 0.0):
        check_nonnegative("initial_power", initial_power)
        self._times: List[float] = [start_time]
        self._watts: List[float] = [initial_power]
        #: bumped on every mutation; the frozen-view staleness token
        self._version = 0
        self._frozen: Optional[Tuple[int, PowerSeries]] = None

    # ------------------------------------------------------------------
    def set_power(self, time: float, watts: float) -> None:
        """Record that the node's power changed to ``watts`` at ``time``.

        Multiple changes at the same instant collapse to the last one;
        if the collapse lands back on the previous segment's level, the
        now-redundant change point is dropped entirely (no zero-delta
        points, so ``change_times`` never reports phantom changes).
        Out-of-order appends are a modelling bug and raise.
        """
        check_nonnegative("watts", watts)
        last_t = self._times[-1]
        if time < last_t:
            raise ValueError(
                f"power timeline must be appended in time order "
                f"(got t={time} after t={last_t})"
            )
        if time == last_t:
            if watts == self._watts[-1]:
                return  # overwrite with the same level: nothing changed
            if len(self._times) > 1 and watts == self._watts[-2]:
                # Collapsed back to the previous level: the change point
                # no longer changes anything — drop it.
                self._times.pop()
                self._watts.pop()
            else:
                self._watts[-1] = watts
            self._version += 1
            return
        if watts == self._watts[-1]:
            return  # no change; avoid zero-length bookkeeping
        self._times.append(time)
        self._watts.append(watts)
        self._version += 1

    # ------------------------------------------------------------------
    def series(self) -> PowerSeries:
        """The frozen columnar view of the trace recorded so far.

        Cached until the next :meth:`set_power` mutation; repeated
        queries against an unchanged timeline reuse the same arrays.
        """
        cached = self._frozen
        if cached is not None and cached[0] == self._version:
            return cached[1]
        view = PowerSeries(self._times, self._watts)
        self._frozen = (self._version, view)
        return view

    #: alias — the record-phase/frozen-phase naming used by the docs
    frozen = series

    @property
    def version(self) -> int:
        """Mutation counter (consumers key their own caches off it)."""
        return self._version

    def cursor(self, start: Optional[float] = None) -> "EnergyCursor":
        """An incremental energy integrator from ``start`` (default: the
        last change point).

        The live-instrument primitive: each ``advance(t)`` walks only the
        change points recorded since the previous call, so per-tick
        sampling over a growing trace stays O(total segments) amortised
        instead of re-integrating from the start every tick.
        """
        return EnergyCursor(self, self._times[-1] if start is None else start)

    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        return self._times[0]

    @property
    def last_change(self) -> float:
        return self._times[-1]

    def power_at(self, time: float) -> float:
        """Instantaneous power at ``time`` (watts)."""
        return self.series().power_at(time)

    def energy(self, t0: float, t1: float) -> float:
        """Exact energy in joules consumed over ``[t0, t1]``.

        The final segment is treated as extending indefinitely (the node
        keeps drawing its last-known power), which is how a real meter
        would see it.
        """
        return self.series().energy(t0, t1)

    def average_power(self, t0: float, t1: float) -> float:
        """Average power over ``[t0, t1]`` (Eq. 3: ``E = P_avg × D``)."""
        return self.series().average_power(t0, t1)

    def window_energy(self, t0: float, t1: float) -> float:
        """Exact energy over ``[t0, t1]`` via a live segment walk.

        Unlike :meth:`energy` this does **not** freeze the columnar
        view, so querying a short window on a still-growing timeline
        costs O(points inside the window) instead of O(recorded history)
        — the windowed-telemetry primitive under the power-cap
        governor's control loop.  Values are identical to
        :meth:`energy` (the kernel and the walk agree exactly; the
        property tests assert it).
        """
        return self._energy_walk(t0, t1)

    def peak_power(self, t0: float, t1: float) -> float:
        """Maximum instantaneous power (watts) over ``[t0, t1]``."""
        return self.series().peak_power(t0, t1)

    def change_times(self, t0: float, t1: float) -> List[float]:
        """The change points strictly inside ``(t0, t1]`` (for merging)."""
        return self.series().change_times(t0, t1).tolist()

    def segments(self) -> List[Tuple[float, float]]:
        """The ``(time, watts)`` change points, oldest first."""
        return list(zip(self._times, self._watts))

    def __len__(self) -> int:
        return len(self._times)

    # ------------------------------------------------------------------
    # reference implementations (pre-columnar scalar walks)
    # ------------------------------------------------------------------
    # Kept verbatim as the brute-force oracle the property-based tests
    # and ``benchmarks/bench_extension_timeline.py`` compare the kernel
    # against.  Do not use in product code.
    def _energy_walk(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError(f"energy interval reversed: [{t0}, {t1}]")
        if t0 < self._times[0]:
            raise ValueError(f"t0={t0} precedes timeline start {self._times[0]}")
        total = 0.0
        idx = bisect.bisect_right(self._times, t0) - 1
        cursor = t0
        while cursor < t1:
            seg_end = (
                self._times[idx + 1] if idx + 1 < len(self._times) else float("inf")
            )
            upto = min(seg_end, t1)
            total += self._watts[idx] * (upto - cursor)
            cursor = upto
            idx += 1
        return total

    def _power_at_walk(self, time: float) -> float:
        if time < self._times[0]:
            raise ValueError(f"t={time} precedes timeline start {self._times[0]}")
        idx = bisect.bisect_right(self._times, time) - 1
        return self._watts[idx]

    def _peak_walk(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError(f"peak interval reversed: [{t0}, {t1}]")
        if t0 < self._times[0]:
            raise ValueError(f"t0={t0} precedes timeline start {self._times[0]}")
        idx = bisect.bisect_right(self._times, t0) - 1
        peak = self._watts[idx]
        for i in range(idx + 1, len(self._times)):
            if self._times[i] > t1:
                break
            peak = max(peak, self._watts[i])
        return peak


class EnergyCursor:
    """Exact cumulative energy over a *growing* timeline, fed forward.

    Live instruments (the ACPI battery, the Baytech outlet) integrate a
    trace that is still being recorded; rebuilding the frozen view every
    refresh tick would re-scan the whole history each time.  The cursor
    instead advances monotonically, walking only the segments between
    the previous tick and the new one, and accumulating their integral —
    the window energies telescope, so the running total equals the exact
    interval integral at every tick.
    """

    __slots__ = ("_timeline", "_t", "_joules")

    def __init__(self, timeline: PowerTimeline, start: float):
        if start < timeline.start_time:
            raise ValueError(
                f"cursor start {start} precedes timeline start "
                f"{timeline.start_time}"
            )
        self._timeline = timeline
        self._t = start
        self._joules = 0.0

    @property
    def time(self) -> float:
        """The instant the cursor has integrated up to."""
        return self._t

    @property
    def joules(self) -> float:
        """Energy accumulated from the cursor's start to :attr:`time`."""
        return self._joules

    def advance(self, upto: float) -> float:
        """Integrate forward to ``upto``; returns the *increment* (joules
        over ``[previous time, upto]``).

        The increment is computed by one fresh segment walk over the new
        window, so it is bit-identical to what a scalar
        ``energy(prev, upto)`` query over the same window returns — the
        property closed-loop consumers (the power-cap governor's
        telemetry) rely on for reproducible control trajectories.  The
        running total since the cursor's start is :attr:`joules`.
        """
        if upto < self._t:
            raise ValueError(
                f"cursor cannot move backwards (at {self._t}, asked {upto})"
            )
        if upto == self._t:
            return 0.0
        step = self._timeline._energy_walk(self._t, upto)
        self._joules += step
        self._t = upto
        return step
