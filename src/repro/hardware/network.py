"""Fast-Ethernet cluster interconnect model.

The paper's cluster is 16 laptops on a 100 Mb Cisco Catalyst 2950.  The
switch backplane is non-blocking for this port count, so the contended
resources are each node's full-duplex **tx** and **rx** links.  We model a
message transfer as a sequence of *chunks*; each chunk holds the sender's
tx link and the receiver's rx link simultaneously for its wire time.
Chunked transfers give approximate fair sharing under contention (flows
interleave at chunk granularity) and correct serialisation for incast
patterns (14 senders into one root share the root's rx link — the
transpose's step 3).

Deadlock freedom: a flow acquires tx first, then rx, then transmits and
releases both.  A flow holding an rx link is never waiting (it is
transmitting), so no hold-and-wait cycle can form.

CPU coupling: the fabric itself only moves bytes and toggles per-node
tx/rx activity counters.  The MPI layer reads those counters to decide
whether a waiting rank busy-polls (traffic flowing — the MPICH-1 progress
engine has work) or blocks in the kernel (backpressured), and charges
protocol cycles for the bytes moved.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.util.units import KIB
from repro.util.validation import check_fraction, check_positive

__all__ = ["NetworkConfig", "NetworkFabric"]


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect parameters (defaults: 100 Mb switched Fast Ethernet)."""

    bandwidth_bps: float = 100e6  #: raw link rate, bits/second
    efficiency: float = 0.9  #: payload fraction after TCP/IP + Ethernet framing
    latency: float = 80e-6  #: one-way small-message latency (MPICH over TCP)
    chunk_bytes: int = 128 * KIB  #: contention granularity
    loopback_bandwidth: float = 1.0e9  #: bytes/s for self-sends (memcpy speed)

    def __post_init__(self) -> None:
        check_positive("bandwidth_bps", self.bandwidth_bps)
        check_fraction("efficiency", self.efficiency)
        check_positive("efficiency", self.efficiency)
        check_positive("chunk_bytes", self.chunk_bytes)
        check_positive("loopback_bandwidth", self.loopback_bandwidth)
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")

    @property
    def payload_rate(self) -> float:
        """Effective payload bandwidth in bytes/second."""
        return self.bandwidth_bps * self.efficiency / 8.0

    def wire_time(self, nbytes: float) -> float:
        """Serialisation time of ``nbytes`` of payload on one link."""
        return nbytes / self.payload_rate


class _LinkActivity:
    """Per-node activity counter with a change-notification event."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._count = 0
        self._changed = engine.event()
        self.listeners: List[Callable[[], None]] = []

    @property
    def active(self) -> bool:
        return self._count > 0

    @property
    def changed(self) -> Event:
        """Event that fires on the next activity transition (0↔>0)."""
        return self._changed

    def acquire(self) -> None:
        self._count += 1
        if self._count == 1:
            self._fire()

    def release(self) -> None:
        if self._count <= 0:
            raise RuntimeError("link activity released more times than acquired")
        self._count -= 1
        if self._count == 0:
            self._fire()

    def _fire(self) -> None:
        old, self._changed = self._changed, self.engine.event()
        old.succeed(self.active)
        for listener in self.listeners:
            listener()


class NetworkFabric:
    """The switched interconnect between ``n_nodes`` endpoints."""

    def __init__(self, engine: Engine, n_nodes: int, config: Optional[NetworkConfig] = None):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.engine = engine
        self.n_nodes = n_nodes
        self.config = config or NetworkConfig()
        self._tx = [Resource(engine) for _ in range(n_nodes)]
        self._rx = [Resource(engine) for _ in range(n_nodes)]
        self._tx_activity = [_LinkActivity(engine) for _ in range(n_nodes)]
        self._rx_activity = [_LinkActivity(engine) for _ in range(n_nodes)]
        # Lazily-created combined tx|rx change events (columnar engines):
        # one shared event per node instead of a fresh nested AnyOf per
        # activity_changed() call.  None ⇒ nobody is currently waiting.
        self._node_changed: List[Optional[Event]] = [None] * n_nodes
        if engine.columnar:
            for nid in range(n_nodes):
                notify = self._node_notifier(nid)
                self._tx_activity[nid].listeners.append(notify)
                self._rx_activity[nid].listeners.append(notify)
        # Per-endpoint extra one-way latency (seconds) — a degraded link
        # (flaky cable, renegotiated duplex).  The fault injector sets it.
        self._latency_penalty = [0.0] * n_nodes
        #: total payload bytes moved (excludes loopback), for reporting
        self.bytes_transferred = 0

    # ------------------------------------------------------------------
    # activity observation (used by the MPI wait policy and NIC power)
    # ------------------------------------------------------------------
    def tx_active(self, node: int) -> bool:
        return self._tx_activity[node].active

    def rx_active(self, node: int) -> bool:
        return self._rx_activity[node].active

    def traffic_active(self, node: int) -> bool:
        """Whether any chunk is currently on this node's tx or rx link."""
        return self.tx_active(node) or self.rx_active(node)

    def activity_changed(self, node: int) -> Event:
        """Event firing at the node's next tx *or* rx activity transition."""
        if self.engine.columnar:
            ev = self._node_changed[node]
            if ev is None:
                ev = self.engine.event()
                self._node_changed[node] = ev
            return ev
        return self.engine.any_of(
            [self._tx_activity[node].changed, self._rx_activity[node].changed]
        )

    def _node_notifier(self, node: int) -> Callable[[], None]:
        def notify() -> None:
            ev = self._node_changed[node]
            if ev is not None:
                self._node_changed[node] = None
                ev.succeed(self.traffic_active(node))

        return notify

    def add_activity_listener(self, node: int, listener: Callable[[], None]) -> None:
        """Synchronous callback on every tx/rx activity flip (NIC power)."""
        self._tx_activity[node].listeners.append(listener)
        self._rx_activity[node].listeners.append(listener)

    # ------------------------------------------------------------------
    # degraded links (used by the fault injector)
    # ------------------------------------------------------------------
    def link_latency_penalty(self, node: int) -> float:
        """Extra one-way latency (s) currently charged at this endpoint."""
        self._check_endpoint(node)
        return self._latency_penalty[node]

    def set_link_latency_penalty(self, node: int, seconds: float) -> None:
        """Degrade (or, with 0, restore) one endpoint's link latency.

        Every transfer touching the endpoint — as sender or receiver —
        pays the penalty on top of the configured wire latency.
        """
        self._check_endpoint(node)
        if seconds < 0:
            raise ValueError(
                f"latency penalty must be non-negative, got {seconds}"
            )
        self._latency_penalty[node] = seconds

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        max_rate: Optional[float] = None,
    ) -> Generator[Event, object, float]:
        """Move ``nbytes`` of payload from ``src`` to ``dst``.

        Generator; drive with ``yield from``.  Returns the wall time spent.

        ``max_rate`` (bytes/s) caps the achievable rate below the wire
        speed — the MPI layer uses it when the *CPU* cannot feed the link
        (protocol cycles per byte exceed the clock's budget at a low DVS
        point).
        """
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        start = self.engine.now
        cfg = self.config

        if src == dst:
            # Loopback: memcpy through DRAM, no NIC involvement.
            if nbytes:
                yield self.engine.timeout(nbytes / cfg.loopback_bandwidth)
            return self.engine.now - start

        latency = (
            cfg.latency
            + self._latency_penalty[src]
            + self._latency_penalty[dst]
        )
        if latency > 0:
            yield self.engine.timeout(latency)

        rate = cfg.payload_rate
        if max_rate is not None:
            rate = min(rate, check_positive("max_rate", max_rate))

        remaining = int(nbytes)
        tx, rx = self._tx[src], self._rx[dst]
        tx_act, rx_act = self._tx_activity[src], self._rx_activity[dst]
        bulk = self.engine.supports_cancel
        while remaining > 0:
            tx_req = tx.request()
            yield tx_req
            rx_req = rx.request()
            yield rx_req
            tx_act.acquire()
            rx_act.acquire()
            try:
                if (
                    bulk
                    and remaining > cfg.chunk_bytes
                    and not tx.queue_length
                    and not rx.queue_length
                ):
                    # Uncontended multi-chunk message on a cancellable
                    # engine: hold both links across every chunk, racing
                    # completion against new contention (see _bulk_hold).
                    remaining = yield from self._bulk_hold(
                        remaining, rate, tx, rx
                    )
                else:
                    chunk = min(cfg.chunk_bytes, remaining)
                    yield self.engine.timeout(chunk / rate)
                    remaining -= chunk
            finally:
                tx_act.release()
                rx_act.release()
                tx.release(tx_req)
                rx.release(rx_req)
        self.bytes_transferred += int(nbytes)
        return self.engine.now - start

    def _bulk_hold(
        self,
        remaining: int,
        rate: float,
        tx: Resource,
        rx: Resource,
    ) -> Generator[Event, object, int]:
        """Transmit as many chunks as possible in one link hold.

        Schedules a single cancellable completion at the message's last
        chunk boundary instead of one timeout (plus resource churn and
        activity flaps) per chunk.  The chunk boundaries are computed
        with the same left-to-right float fold the scalar per-chunk walk
        performs (``t = t + chunk/rate`` per chunk), so both completion
        and preemption land on the **exact** float instants the oracle
        produces.  A request queueing on either link fires
        ``contended()``; the hold is then released at the next chunk
        boundary — restoring the scalar walk's chunk-granularity fair
        sharing under contention.  Returns the bytes still to send.
        """
        engine = self.engine
        chunk_bytes = self.config.chunk_bytes
        boundaries = []
        t = engine.now
        left = remaining
        while left > 0:
            chunk = min(chunk_bytes, left)
            t = t + chunk / rate
            boundaries.append(t)
            left -= chunk
        done = engine.timeout_at(boundaries[-1])
        yield engine.any_of([done, tx.contended(), rx.contended()])
        if done.processed:
            return 0
        engine.cancel(done)
        # Contention: finish the chunk in flight, then hand over.
        k = bisect_left(boundaries, engine.now)
        boundary = boundaries[k]
        if boundary > engine.now:
            yield engine.timeout_at(boundary)
        return remaining - min((k + 1) * chunk_bytes, remaining)

    def _check_endpoint(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(
                f"node {node} out of range for {self.n_nodes}-node fabric"
            )
