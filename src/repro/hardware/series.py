"""Columnar power-series kernel: prefix-sum energy queries, batch sampling.

:class:`~repro.hardware.timeline.PowerTimeline` is the cheap append-only
*recording* phase; this module is the *query* phase.  :class:`PowerSeries`
materialises a timeline's change points into NumPy columns plus a
prefix-sum energy column, so the cumulative integral

    ``F(t) = ∫ P dt`` from the series start to ``t``

is one ``searchsorted`` plus one fused multiply-add — ``energy(t0, t1)``
is ``F(t1) - F(t0)`` in O(log n), and the batch variants (:meth:`sample`,
:meth:`energy_many`, :meth:`windowed_average`) amortise that over whole
window sets in single vectorised calls.  Because adjacent window energies
telescope through ``F``, batch results sum *exactly* (not just to 1 ulp)
to the enclosing interval's energy — the attribution layer relies on it.

:class:`ClusterSeries` aggregates every node's frozen series: cluster
totals come from one *merged* series (union of all change points, watts
summed once at merge time) instead of per-node Python loops, and the
per-node batch queries power the telemetry, profile, and export layers.

Everything here is immutable; a timeline invalidates its cached frozen
view on append (see ``PowerTimeline.series``), so consumers never observe
a stale kernel.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["PowerSeries", "ClusterSeries"]


class PowerSeries:
    """Immutable columnar view of one piecewise-constant power trace.

    Columns (equal length ``n``, change points oldest first):

    ``times``
        Change-point instants, strictly increasing.
    ``watts``
        Power level from each change point to the next (the last level
        extends indefinitely — a meter keeps reading it).
    ``cum_energy``
        Joules integrated from ``times[0]`` to ``times[i]`` (prefix sum;
        ``cum_energy[0] == 0``).
    """

    __slots__ = ("times", "watts", "cum_energy")

    def __init__(self, times: np.ndarray, watts: np.ndarray):
        times = np.array(times, dtype=float)
        watts = np.array(watts, dtype=float)
        if times.ndim != 1 or times.shape != watts.shape or times.size == 0:
            raise ValueError("times and watts must be equal-length 1-D, non-empty")
        if times.size > 1 and not np.all(np.diff(times) > 0):
            raise ValueError("change-point times must be strictly increasing")
        if np.any(watts < 0):
            raise ValueError("power levels must be non-negative")
        cum = np.empty_like(times)
        cum[0] = 0.0
        if times.size > 1:
            np.cumsum(watts[:-1] * np.diff(times), out=cum[1:])
        times.flags.writeable = False
        watts.flags.writeable = False
        cum.flags.writeable = False
        self.times = times
        self.watts = watts
        self.cum_energy = cum

    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        return float(self.times[0])

    @property
    def last_change(self) -> float:
        return float(self.times[-1])

    def __len__(self) -> int:
        return self.times.size

    # ------------------------------------------------------------------
    def _locate(self, times: np.ndarray) -> np.ndarray:
        """Segment index active at each query time (validates the range)."""
        if times.size and float(times.min()) < self.start_time:
            bad = float(times.min())
            raise ValueError(
                f"t={bad} precedes timeline start {self.start_time}"
            )
        return np.searchsorted(self.times, times, side="right") - 1

    def cumulative_energy(self, times) -> np.ndarray:
        """``F(t)``: joules from the series start to each query time."""
        t = np.atleast_1d(np.asarray(times, dtype=float))
        idx = self._locate(t)
        return self.cum_energy[idx] + self.watts[idx] * (t - self.times[idx])

    def sample(self, times) -> np.ndarray:
        """Instantaneous power (watts) at each query time, vectorised."""
        t = np.atleast_1d(np.asarray(times, dtype=float))
        return self.watts[self._locate(t)]

    # -- scalar queries (delegated to by PowerTimeline) ----------------
    def power_at(self, time: float) -> float:
        """Instantaneous power at ``time`` (watts)."""
        return float(self.sample(time)[0])

    def energy(self, t0: float, t1: float) -> float:
        """Exact energy in joules consumed over ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"energy interval reversed: [{t0}, {t1}]")
        if t0 < self.start_time:
            raise ValueError(
                f"t0={t0} precedes timeline start {self.start_time}"
            )
        f = self.cumulative_energy(np.array([t0, t1]))
        return float(f[1] - f[0])

    def average_power(self, t0: float, t1: float) -> float:
        """Average power over ``[t0, t1]`` (Eq. 3: ``E = P_avg × D``)."""
        if t1 == t0:
            return self.power_at(t0)
        return self.energy(t0, t1) / (t1 - t0)

    def peak_power(self, t0: float, t1: float) -> float:
        """Maximum instantaneous power (watts) over ``[t0, t1]``.

        Piecewise-constant traces attain their maximum at segment starts,
        so the answer is the max level among the segment active at ``t0``
        and every change point inside the window.
        """
        if t1 < t0:
            raise ValueError(f"peak interval reversed: [{t0}, {t1}]")
        if t0 < self.start_time:
            raise ValueError(
                f"t0={t0} precedes timeline start {self.start_time}"
            )
        lo = int(np.searchsorted(self.times, t0, side="right")) - 1
        hi = int(np.searchsorted(self.times, t1, side="right"))
        return float(self.watts[lo:hi].max())

    # -- batch queries --------------------------------------------------
    def energy_many(self, intervals) -> np.ndarray:
        """Joules over each ``(t0, t1)`` row of ``intervals``, vectorised.

        ``intervals`` is array-like of shape ``(m, 2)``.  Zero-width
        windows yield exactly 0.0.
        """
        iv = np.asarray(intervals, dtype=float)
        if iv.ndim != 2 or iv.shape[1] != 2:
            raise ValueError(f"intervals must have shape (m, 2), got {iv.shape}")
        if np.any(iv[:, 1] < iv[:, 0]):
            raise ValueError("energy_many: an interval is reversed")
        if iv.size == 0:
            return np.empty(0)
        return self.cumulative_energy(iv[:, 1]) - self.cumulative_energy(iv[:, 0])

    def windowed_average(self, edges) -> np.ndarray:
        """Average power over each ``[edges[k], edges[k+1]]`` window.

        ``edges`` is a non-decreasing 1-D array of ``k+1`` boundaries;
        returns ``k`` averages.  Zero-width windows report the
        instantaneous power at their edge (matching
        :meth:`average_power`).
        """
        e = np.asarray(edges, dtype=float)
        if e.ndim != 1 or e.size < 2:
            raise ValueError("edges must be 1-D with at least two boundaries")
        widths = np.diff(e)
        if np.any(widths < 0):
            raise ValueError("edges must be non-decreasing")
        f = self.cumulative_energy(e)
        joules = np.diff(f)
        positive = widths > 0
        out = np.empty_like(widths)
        np.divide(joules, widths, out=out, where=positive)
        if not positive.all():
            out[~positive] = self.sample(e[:-1][~positive])
        return out

    def change_times(self, t0: float, t1: float) -> np.ndarray:
        """The change points strictly inside ``(t0, t1]``."""
        lo = np.searchsorted(self.times, t0, side="right")
        hi = np.searchsorted(self.times, t1, side="right")
        return self.times[lo:hi]

    def window(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, watts)`` views of the change points inside
        ``[t0, t1]`` — the slice exporters iterate to render a trace."""
        lo = int(np.searchsorted(self.times, t0, side="left"))
        hi = int(np.searchsorted(self.times, t1, side="right"))
        return self.times[lo:hi], self.watts[lo:hi]


class ClusterSeries:
    """All node series of one cluster, plus their merged total.

    The merged series is built once (union of every node's change points,
    per-node levels sampled and summed in one vectorised pass), so every
    cluster-total query — energy, average, peak, instantaneous — is a
    single O(log n) kernel query instead of a Python loop over nodes.
    """

    __slots__ = ("node_ids", "_per_node", "_merged")

    def __init__(self, per_node: Mapping[int, PowerSeries]):
        if not per_node:
            raise ValueError("ClusterSeries needs at least one node series")
        self.node_ids: Tuple[int, ...] = tuple(sorted(per_node))
        self._per_node: Dict[int, PowerSeries] = {
            nid: per_node[nid] for nid in self.node_ids
        }
        self._merged: Optional[PowerSeries] = None

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.node_ids)

    def node(self, node_id: int) -> PowerSeries:
        return self._per_node[node_id]

    @property
    def merged(self) -> PowerSeries:
        """The cluster-total trace (sum of nodes), built lazily once."""
        if self._merged is None:
            start = max(s.start_time for s in self._per_node.values())
            times = np.unique(
                np.concatenate(
                    [np.array([start])]
                    + [s.times[s.times >= start] for s in self._per_node.values()]
                )
            )
            watts = np.zeros_like(times)
            for series in self._per_node.values():
                watts += series.sample(times)
            self._merged = PowerSeries(times, watts)
        return self._merged

    # -- cluster totals (one merged-kernel query each) ------------------
    def total_energy(self, t0: float, t1: float) -> float:
        return self.merged.energy(t0, t1)

    def average_power(self, t0: float, t1: float) -> float:
        return self.merged.average_power(t0, t1)

    def power_at(self, time: float) -> float:
        return self.merged.power_at(time)

    def peak_power(self, t0: float, t1: float) -> float:
        return self.merged.peak_power(t0, t1)

    # -- per-node batches ------------------------------------------------
    def node_energies(self, t0: float, t1: float) -> np.ndarray:
        """Per-node joules over ``[t0, t1]``, ordered by node id."""
        return np.array(
            [self._per_node[nid].energy(t0, t1) for nid in self.node_ids]
        )

    def node_average_powers(self, t0: float, t1: float) -> Dict[int, float]:
        """Per-node average watts over ``[t0, t1]``, keyed by node id."""
        if t1 == t0:
            return {
                nid: self._per_node[nid].power_at(t0) for nid in self.node_ids
            }
        energies = self.node_energies(t0, t1)
        width = t1 - t0
        return {
            nid: float(energies[i] / width)
            for i, nid in enumerate(self.node_ids)
        }

    def sample_matrix(self, times) -> np.ndarray:
        """Shape ``(n_nodes, len(times))`` instantaneous watts matrix."""
        t = np.atleast_1d(np.asarray(times, dtype=float))
        return np.vstack([self._per_node[nid].sample(t) for nid in self.node_ids])

    def windowed_average_matrix(self, edges) -> np.ndarray:
        """Shape ``(n_nodes, len(edges) - 1)`` windowed-average matrix."""
        return np.vstack(
            [self._per_node[nid].windowed_average(edges) for nid in self.node_ids]
        )
