"""Central calibration constants for the simulated platform.

Everything tunable about the model lives here, in one frozen dataclass, so
that (a) experiments are reproducible by construction and (b) the
calibration that matches the paper's published crescendos is explicit and
reviewable.  DESIGN.md §4 derives the defaults; EXPERIMENTS.md records the
resulting paper-vs-measured comparison.

Rationale for the defaults:

* ``cpu_max_power = 21 W`` — the Pentium M 1.4 "Banias" TDP; a fully
  active CPU-bound loop sits near it.
* ``base_power = 8.2 W`` — chipset + 1 GB DDR refresh + disk idle + PSU
  loss of the Inspiron 8600 with the display off.  Together with the TDP
  this puts the CPU-bound energy minimum at 800 MHz (paper Fig 7), which
  requires ``7.8 W < base < 8.7 W`` under the Table-2 ladder.
* activity factors — see :mod:`repro.hardware.power`; SPIN ≈ 0.4 is what
  the FT crescendo implies for the MPICH-1 progress engine's polling loop.
* ``proto_cycles_per_byte = 12`` — the classic "1 GHz per Gb/s" TCP rule
  of thumb, giving ~10 % CPU utilisation feeding a saturated 100 Mb link
  at 1.4 GHz (and ~24 % at 600 MHz, still below saturation, hence the
  paper's near-flat communication delay crescendos).
* ``transition_penalty = 1.5 ms`` — effective per-transition cost of a
  SpeedStep switch as seen by applications (voltage ramp + re-warming),
  far above the 10 µs architectural floor the datasheet quotes; this is
  what makes the paper's *dynamic* strategy slightly slower than static
  at the same operating point (Fig 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.hardware.activity import CpuActivity
from repro.hardware.dvfs import DVFSTable
from repro.hardware.memory import MemoryHierarchy
from repro.hardware.network import NetworkConfig
from repro.hardware.power import ActivityFactors, CpuPowerModel, NodePowerModel
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the simulated platform."""

    # --- power -------------------------------------------------------
    cpu_max_power: float = 21.0
    base_power: float = 8.2
    nic_active_power: float = 0.6
    #: whole-node suspend-to-RAM draw while power-gated (DRAM refresh +
    #: wake logic + PSU tare); must sit well below ``base_power`` for
    #: the horizontal knob to beat the DVFS floor
    gated_power: float = 2.4
    activity_factors: Mapping[CpuActivity, float] = field(
        default_factory=lambda: {
            CpuActivity.ACTIVE: 1.00,
            CpuActivity.MEMSTALL: 0.45,
            CpuActivity.PROTO: 0.70,
            CpuActivity.SPIN: 0.40,
            CpuActivity.IDLE: 0.12,
        }
    )

    # --- memory & network ---------------------------------------------
    memory: MemoryHierarchy = field(default_factory=MemoryHierarchy)
    network: NetworkConfig = field(default_factory=NetworkConfig)

    # --- MPI software costs --------------------------------------------
    #: kernel+MPI protocol cycles charged per payload byte moved,
    #: overlappable with transmission (checksums, socket copies)
    proto_cycles_per_byte: float = 12.0
    #: non-overlappable receive-side cycles per byte (unpack after the
    #: data has fully arrived) — the source of the paper's small but
    #: nonzero communication delay crescendo (Fig 8)
    serial_cycles_per_byte: float = 3.0
    #: per-message software overhead (envelope handling, matching), cycles
    message_overhead_cycles: float = 6_000.0
    #: messages at most this large are sent eagerly (buffered); larger
    #: ones use the rendezvous protocol
    eager_threshold_bytes: int = 64 * 1024
    #: seconds of busy-wait polling before a waiting rank blocks in the
    #: kernel (MPICH-1 select loop behaviour)
    spin_block_threshold: float = 0.005
    #: whether /proc/stat reports busy-wait time as busy (reality: yes;
    #: flipping this is the accounting ablation of DESIGN.md §6)
    procstat_spin_is_busy: bool = True

    # --- DVS transitions -------------------------------------------------
    #: architectural P-state switch latency (paper: ~10 µs lower bound)
    transition_latency: float = 10e-6
    #: effective application-visible per-transition penalty (voltage ramp,
    #: pipeline drain, cache re-warming)
    transition_penalty: float = 1.5e-3

    def __post_init__(self) -> None:
        check_positive("cpu_max_power", self.cpu_max_power)
        check_nonnegative("base_power", self.base_power)
        check_nonnegative("nic_active_power", self.nic_active_power)
        check_nonnegative("gated_power", self.gated_power)
        check_nonnegative("proto_cycles_per_byte", self.proto_cycles_per_byte)
        check_nonnegative("serial_cycles_per_byte", self.serial_cycles_per_byte)
        check_nonnegative("message_overhead_cycles", self.message_overhead_cycles)
        check_positive("eager_threshold_bytes", self.eager_threshold_bytes)
        check_nonnegative("spin_block_threshold", self.spin_block_threshold)
        check_nonnegative("transition_latency", self.transition_latency)
        check_nonnegative("transition_penalty", self.transition_penalty)

    # ------------------------------------------------------------------
    def node_power_model(self, table: DVFSTable) -> NodePowerModel:
        """Build the node power model for a given DVFS ladder."""
        cpu = CpuPowerModel(
            table,
            max_power=self.cpu_max_power,
            factors=ActivityFactors(dict(self.activity_factors)),
        )
        return NodePowerModel(
            cpu=cpu,
            base_power=self.base_power,
            nic_active_power=self.nic_active_power,
            gated_power=self.gated_power,
        )

    def with_overrides(self, **kwargs: object) -> "Calibration":
        """A copy with some fields replaced (ablation experiments)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The calibration used throughout the reproduction.
DEFAULT_CALIBRATION = Calibration()
