"""Cluster assembly: nodes + interconnect against one engine.

:meth:`Cluster.from_spec` is the main entry point used by experiments,
examples, and the SPMD launcher: given a declarative
:class:`~repro.hardware.spec.ClusterSpec` it creates the engine, the
nodes (per-group DVFS ladders and power models — the default spec
reproduces the paper's homogeneous 16-laptop cluster, a multi-group
spec a heterogeneous machine) and the Ethernet fabric, and wires NIC
activity into node power timelines.

:meth:`Cluster.build` is the deprecated positional predecessor, kept as
a thin shim over a single-group homogeneous spec.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

from repro.hardware.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hardware.dvfs import DVFSTable
from repro.hardware.network import NetworkFabric
from repro.hardware.node import Node
from repro.hardware.scaling import scaled_calibration
from repro.hardware.series import ClusterSeries
from repro.hardware.spec import ClusterSpec
from repro.sim.engine import Engine
from repro.sim.factory import make_engine
from repro.sim.trace import NullRecorder, TraceRecorder

__all__ = ["Cluster"]


class Cluster:
    """A DVS-capable Beowulf cluster (homogeneous or mixed-generation)."""

    def __init__(
        self,
        engine: Engine,
        nodes: List[Node],
        fabric: NetworkFabric,
        calibration: Calibration,
        trace: TraceRecorder,
    ):
        self.engine = engine
        self.nodes = nodes
        self.fabric = fabric
        self.calibration = calibration
        self.trace = trace
        self._series_cache: Optional[Tuple[Tuple[int, ...], ClusterSeries]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec: ClusterSpec,
        *,
        calibration: Optional[Calibration] = None,
        trace: Optional[TraceRecorder] = None,
        engine: Optional[Engine] = None,
    ) -> "Cluster":
        """Construct the cluster a :class:`ClusterSpec` describes.

        Each node group gets its own ladder and power model (the base
        calibration ported to the group's technology generation and core
        kind); node ids run sequentially across the groups in
        declaration order.  ``calibration`` is the *base platform*
        calibration that per-group scaling starts from; ``spec.network``
        overrides its fabric config when set.
        """
        cal = calibration or DEFAULT_CALIBRATION
        eng = engine if engine is not None else make_engine()
        tracer = trace if trace is not None else NullRecorder()

        nodes: List[Node] = []
        for group in spec.groups:
            ladder = group.ladder()
            group_cal = scaled_calibration(cal, group.tech, group.core)
            power_model = group_cal.node_power_model(ladder)
            for _ in range(group.count):
                nodes.append(
                    Node(
                        eng,
                        node_id=len(nodes),
                        table=ladder,
                        power_model=power_model,
                        memory=group_cal.memory,
                        spin_block_threshold=group_cal.spin_block_threshold,
                        trace=tracer,
                        spin_counts_busy=group_cal.procstat_spin_is_busy,
                        cycles_per_work=group.core.cycles_per_work,
                    )
                )
        fabric = NetworkFabric(
            eng,
            len(nodes),
            spec.network if spec.network is not None else cal.network,
        )
        for node in nodes:
            fabric.add_activity_listener(
                node.node_id,
                _nic_listener(fabric, node),
            )
        return cls(eng, nodes, fabric, cal, tracer)

    @classmethod
    def build(
        cls,
        n_nodes: int,
        calibration: Optional[Calibration] = None,
        table: Optional[DVFSTable] = None,
        trace: Optional[TraceRecorder] = None,
        engine: Optional[Engine] = None,
    ) -> "Cluster":
        """Deprecated: construct ``n_nodes`` identical nodes.

        Thin shim over :meth:`from_spec` with a single-group homogeneous
        spec; kept one release for callers of the positional API.
        """
        warnings.warn(
            "Cluster.build is deprecated; use "
            "Cluster.from_spec(ClusterSpec.homogeneous(n)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        spec = ClusterSpec.homogeneous(
            n_nodes,
            points=tuple(table.points) if table is not None else None,
        )
        return cls.from_spec(
            spec, calibration=calibration, trace=trace, engine=engine
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def table(self) -> DVFSTable:
        return self.nodes[0].table

    def finalize(self) -> None:
        """Close all nodes' accounting at the end of a run."""
        for node in self.nodes:
            node.finalize()

    def series(self) -> ClusterSeries:
        """The frozen per-node + merged columnar views of every timeline.

        Cached against every node timeline's mutation counter, so
        repeated aggregate queries between power changes reuse one
        kernel build (the merged total itself materialises lazily on the
        first cluster-total query).
        """
        versions = tuple(node.timeline.version for node in self.nodes)
        cached = self._series_cache
        if cached is not None and cached[0] == versions:
            return cached[1]
        series = ClusterSeries(
            {node.node_id: node.timeline.series() for node in self.nodes}
        )
        self._series_cache = (versions, series)
        return series

    def total_energy(self, t0: float, t1: float) -> float:
        """Exact total cluster energy (joules) over ``[t0, t1]``."""
        return self.series().total_energy(t0, t1)

    # ------------------------------------------------------------------
    # windowed power accounting (the cap governor's measurement substrate)
    # ------------------------------------------------------------------
    def average_power(self, t0: float, t1: float) -> float:
        """Average cluster power (watts) over ``[t0, t1]``."""
        return self.series().average_power(t0, t1)

    def node_average_powers(self, t0: float, t1: float) -> Dict[int, float]:
        """Per-node average power (watts) over ``[t0, t1]``."""
        return self.series().node_average_powers(t0, t1)

    def window_average_power(self, t0: float, t1: float) -> float:
        """Average cluster power over ``[t0, t1]`` from the live timelines.

        The control-loop variant of :meth:`average_power`: walks only
        the window's segments on each still-growing node timeline
        (O(window) per call) instead of freezing and merging every
        timeline (O(recorded history) per call).  Per-node integrals are
        exact; only the summation order across nodes differs from the
        merged-series query.
        """
        duration = t1 - t0
        if duration <= 0:
            raise ValueError(f"window reversed or empty: [{t0}, {t1}]")
        total = 0.0
        for node in self.nodes:
            total += node.timeline.window_energy(t0, t1)
        return total / duration

    def window_node_average_powers(self, t0: float, t1: float) -> Dict[int, float]:
        """Per-node average power over ``[t0, t1]`` from the live timelines.

        Windowed-telemetry variant of :meth:`node_average_powers` (same
        values — the kernel and the live walk agree exactly — without
        freezing each timeline's columnar view per control window).
        """
        duration = t1 - t0
        if duration <= 0:
            raise ValueError(f"window reversed or empty: [{t0}, {t1}]")
        return {
            node.node_id: node.timeline.window_energy(t0, t1) / duration
            for node in self.nodes
        }

    def power_at(self, time: float) -> float:
        """Instantaneous cluster power (watts) at ``time``."""
        return self.series().power_at(time)

    def peak_power(self, t0: float, t1: float) -> float:
        """Maximum instantaneous *cluster* power (watts) over ``[t0, t1]``.

        The cluster trace is the sum of per-node piecewise-constant
        traces, so its maximum lives on the merged series — one kernel
        query instead of evaluating the sum at every candidate instant.
        """
        return self.series().peak_power(t0, t1)


def _nic_listener(fabric: NetworkFabric, node: Node):
    """Closure translating fabric activity flips into node NIC power."""

    def listener() -> None:
        node.set_nic_active(fabric.traffic_active(node.node_id))

    return listener
