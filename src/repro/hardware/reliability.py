"""Thermal / reliability model (the paper's §1 motivation, quantified).

The introduction argues the case for DVS partly on failure rates:
*"Commodity components fail at an annual rate of 2-3 %. … Component life
expectancy decreases 50 % for every 10 °C (18 °F) temperature increase.
Reducing a component's operating temperature the same amount (consuming
less energy) doubles the life expectancy."*

This module turns those sentences into a model so experiments can report
the reliability consequence of an energy-saving operating point:

* steady-state component temperature rises linearly with dissipated
  power (a thermal resistance in °C/W — laptop-class cooling);
* life expectancy follows the paper's rule: ×2 per 10 °C decrease
  (the classic Arrhenius-rule-of-thumb the paper cites);
* a cluster's expected annual failures scale inversely with per-node
  life expectancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["ReliabilityModel", "StrategyReliability", "compare_reliability"]


@dataclass(frozen=True)
class ReliabilityModel:
    """Thermal and failure-rate constants.

    Attributes
    ----------
    ambient_c:
        Machine-room ambient temperature.
    thermal_resistance_c_per_w:
        Steady-state °C rise per watt dissipated in the node (laptop
        heatsink + chassis; ~1 °C/W is typical for this class).
    annual_failure_rate:
        Baseline annual failure probability per node at the reference
        temperature (paper: 2-3 %).
    reference_power_w:
        Node power at which ``annual_failure_rate`` applies.
    doubling_celsius:
        Temperature decrease that doubles life expectancy (paper: 10 °C).
    """

    ambient_c: float = 22.0
    thermal_resistance_c_per_w: float = 1.0
    annual_failure_rate: float = 0.025
    reference_power_w: float = 29.2  # node flat-out at 1.4 GHz
    doubling_celsius: float = 10.0

    def __post_init__(self) -> None:
        check_nonnegative("ambient_c", self.ambient_c)
        check_positive("thermal_resistance_c_per_w", self.thermal_resistance_c_per_w)
        check_positive("annual_failure_rate", self.annual_failure_rate)
        check_positive("reference_power_w", self.reference_power_w)
        check_positive("doubling_celsius", self.doubling_celsius)

    # ------------------------------------------------------------------
    def temperature(self, average_power_w: float) -> float:
        """Steady-state component temperature at ``average_power_w``."""
        check_nonnegative("average_power_w", average_power_w)
        return self.ambient_c + self.thermal_resistance_c_per_w * average_power_w

    def life_expectancy_factor(self, average_power_w: float) -> float:
        """Life expectancy relative to the reference power (×2 / −10 °C)."""
        delta = self.temperature(self.reference_power_w) - self.temperature(
            average_power_w
        )
        return 2.0 ** (delta / self.doubling_celsius)

    def failure_rate(self, average_power_w: float) -> float:
        """Annual per-node failure probability at ``average_power_w``."""
        return self.annual_failure_rate / self.life_expectancy_factor(
            average_power_w
        )

    def cluster_failures_per_year(
        self, average_power_w: float, n_nodes: int
    ) -> float:
        """Expected annual hardware failures across the cluster."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        return self.failure_rate(average_power_w) * n_nodes


@dataclass(frozen=True)
class StrategyReliability:
    """Reliability consequence of one measured operating point."""

    label: str
    average_power_w: float
    temperature_c: float
    life_factor: float
    failures_per_year: float


def compare_reliability(
    points,
    n_nodes: int,
    model: ReliabilityModel = ReliabilityModel(),
) -> list:
    """Reliability rows for a crescendo of EnergyDelayPoints.

    ``average_power`` per node is ``E / (D · n_nodes)`` — Eq. 3 rearranged.
    """
    rows = []
    for p in points:
        avg_power = p.energy / (p.delay * n_nodes)
        rows.append(
            StrategyReliability(
                label=p.label,
                average_power_w=avg_power,
                temperature_c=model.temperature(avg_power),
                life_factor=model.life_expectancy_factor(avg_power),
                failures_per_year=model.cluster_failures_per_year(
                    avg_power, n_nodes
                ),
            )
        )
    return rows
