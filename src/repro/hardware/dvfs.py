"""DVFS operating points and the Pentium M ladder (paper Table 2).

An :class:`OperatingPoint` couples a clock frequency with the supply
voltage required to sustain it; a :class:`DVFSTable` is the ordered ladder
of points a processor supports (what Enhanced SpeedStep exposes through
ACPI P-states).

The paper's platform — the Intel Pentium M 1.4 GHz ("Banias") in the Dell
Inspiron 8600 — supports exactly five points, reproduced verbatim in
:data:`PENTIUM_M_1400`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.util.units import MHZ, pretty_freq
from repro.util.validation import check_positive

__all__ = [
    "OperatingPoint",
    "DVFSTable",
    "PENTIUM_M_1400",
    "alpha_power_frequency",
]


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """One P-state: a (frequency, voltage) pair.

    Ordered by frequency so tables sort naturally.
    """

    frequency: float  #: clock frequency in Hz
    voltage: float  #: supply voltage in volts

    def __post_init__(self) -> None:
        check_positive("frequency", self.frequency)
        check_positive("voltage", self.voltage)

    @property
    def mhz(self) -> float:
        """Frequency in MHz (the unit the paper's tables use)."""
        return self.frequency / MHZ

    def fv2(self) -> float:
        """The CMOS dynamic-power term ``f · V²`` (Eq. 2 of the paper)."""
        return self.frequency * self.voltage**2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{pretty_freq(self.frequency)}@{self.voltage:.3f}V"


class DVFSTable:
    """An ordered ladder of operating points (slowest first).

    Provides the lookups the DVS substrate needs: nearest legal point,
    stepping up/down one notch, and the paper's normalisation conventions
    (everything is normalised to the *fastest* point).
    """

    def __init__(self, points: Sequence[OperatingPoint]):
        if not points:
            raise ValueError("a DVFS table needs at least one operating point")
        ordered = sorted(points)
        freqs = [p.frequency for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate frequencies in DVFS table")
        for slow, fast in zip(ordered, ordered[1:]):
            if fast.voltage < slow.voltage:
                raise ValueError(
                    "supply voltage must be non-decreasing with frequency: "
                    f"{slow} vs {fast}"
                )
        self._points: Tuple[OperatingPoint, ...] = tuple(ordered)
        # Precomputed lookups for the ladder's own points.  The table and
        # its points are immutable, so these are pure memoisations: the
        # cached floats come from the exact expressions the uncached
        # methods evaluate (id-keyed — self._points pins every id).
        self._index_by_freq = {p.frequency: i for i, p in enumerate(ordered)}
        fastest_fv2 = ordered[-1].fv2()
        fastest_v = ordered[-1].voltage
        self._rel_fv2_by_id = {id(p): p.fv2() / fastest_fv2 for p in ordered}
        self._rel_v2_by_id = {
            id(p): (p.voltage / fastest_v) ** 2 for p in ordered
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, idx: int) -> OperatingPoint:
        return self._points[idx]

    @property
    def points(self) -> Tuple[OperatingPoint, ...]:
        return self._points

    @property
    def fastest(self) -> OperatingPoint:
        return self._points[-1]

    @property
    def slowest(self) -> OperatingPoint:
        return self._points[0]

    @property
    def frequencies(self) -> List[float]:
        """All frequencies, slowest first."""
        return [p.frequency for p in self._points]

    # ------------------------------------------------------------------
    def point_for(self, frequency: float) -> OperatingPoint:
        """The operating point with exactly ``frequency`` (Hz)."""
        idx = self._index_by_freq.get(frequency)
        if idx is None:
            raise KeyError(
                f"no operating point at {pretty_freq(frequency)}; "
                f"available: {[pretty_freq(f) for f in self.frequencies]}"
            )
        return self._points[idx]

    def index_of(self, frequency: float) -> int:
        """Index (0 = slowest) of the point with exactly ``frequency``."""
        idx = self._index_by_freq.get(frequency)
        if idx is None:
            raise KeyError(f"no operating point at {pretty_freq(frequency)}")
        return idx

    def closest(self, frequency: float) -> OperatingPoint:
        """The legal point nearest to an arbitrary requested frequency.

        This mirrors what the Linux CPUFreq userspace governor does with a
        ``scaling_setspeed`` write that is not an exact P-state.
        """
        return min(self._points, key=lambda p: abs(p.frequency - frequency))

    def step_down(self, frequency: float) -> OperatingPoint:
        """One notch slower (clamped at the slowest point)."""
        idx = self.index_of(frequency)
        return self._points[max(idx - 1, 0)]

    def step_up(self, frequency: float) -> OperatingPoint:
        """One notch faster (clamped at the fastest point)."""
        idx = self.index_of(frequency)
        return self._points[min(idx + 1, len(self._points) - 1)]

    def relative_fv2(self, point: OperatingPoint) -> float:
        """``f·V²`` of ``point`` normalised to the fastest point.

        This is the frequency-dependent scale factor of CPU dynamic power
        (Eq. 2): at the fastest point it is 1.0.
        """
        cached = self._rel_fv2_by_id.get(id(point))
        if cached is not None:
            return cached
        return point.fv2() / self.fastest.fv2()

    def relative_v2(self, point: OperatingPoint) -> float:
        """``V²`` of ``point`` normalised to the fastest point.

        Used for the leakage-like component of idle power, which tracks
        voltage but not clock frequency (the clock is gated when halted).
        """
        cached = self._rel_v2_by_id.get(id(point))
        if cached is not None:
            return cached
        return (point.voltage / self.fastest.voltage) ** 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DVFSTable([{', '.join(str(p) for p in self._points)}])"


def alpha_power_frequency(
    voltage: float, threshold_voltage: float, k: float
) -> float:
    """Frequency sustainable at ``voltage`` per the paper's Eq. 1.

    ``f ∝ (V - Vt) / V`` — the alpha-power law with α=1 used in §2.1.  The
    proportionality constant ``k`` is fitted per processor; see
    ``tests/hardware/test_dvfs.py`` for the fit against Table 2.
    """
    if voltage <= threshold_voltage:
        raise ValueError(
            f"voltage {voltage} must exceed threshold voltage {threshold_voltage}"
        )
    return k * (voltage - threshold_voltage) / voltage


#: Paper Table 2 — frequency / supply-voltage pairs for the Pentium M 1.4 GHz.
PENTIUM_M_1400 = DVFSTable(
    [
        OperatingPoint(frequency=1400 * MHZ, voltage=1.484),
        OperatingPoint(frequency=1200 * MHZ, voltage=1.436),
        OperatingPoint(frequency=1000 * MHZ, voltage=1.308),
        OperatingPoint(frequency=800 * MHZ, voltage=1.180),
        OperatingPoint(frequency=600 * MHZ, voltage=0.956),
    ]
)
