"""Memory-hierarchy timing model (Pentium M "Banias").

The paper's microbenchmarks distinguish three data regimes that we must
time differently under DVS:

* **register/L1/L2 resident** — every access is an on-die hit whose cost
  is a fixed number of *cycles*; wall time scales as ``1/f`` (Fig 7);
* **DRAM resident** — every access pays the ~110 ns main-memory latency
  (paper §4: "memory load latency of 110ns"), which does not depend on the
  core clock (Fig 6);
* mixes in between, produced by real kernels.

:class:`MemoryHierarchy` classifies a strided walk over a buffer and
returns an :class:`AccessCost` splitting the work into frequency-dependent
cycles and frequency-independent stall seconds.  Workload models feed those
two halves to :meth:`SimCPU.run_cycles` and :meth:`SimCPU.stall`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KIB, MIB
from repro.util.validation import check_positive

__all__ = ["AccessCost", "MemoryHierarchy", "PENTIUM_M_MEMORY"]


@dataclass(frozen=True)
class AccessCost:
    """Cost decomposition of a block of memory work.

    Attributes
    ----------
    cpu_cycles:
        Frequency-dependent work (address generation, the ALU op on each
        element, on-die cache hit latency).
    stall_seconds:
        Frequency-independent stall time (DRAM latency, paced by the memory
        controller's clock rather than the core's).
    """

    cpu_cycles: float
    stall_seconds: float

    def __add__(self, other: "AccessCost") -> "AccessCost":
        return AccessCost(
            self.cpu_cycles + other.cpu_cycles,
            self.stall_seconds + other.stall_seconds,
        )

    def scaled(self, factor: float) -> "AccessCost":
        return AccessCost(self.cpu_cycles * factor, self.stall_seconds * factor)

    def duration_at(self, frequency: float) -> float:
        """Wall time of this work at clock ``frequency`` (Hz)."""
        return self.cpu_cycles / frequency + self.stall_seconds


@dataclass(frozen=True)
class MemoryHierarchy:
    """Capacities and latencies of the on-die caches and DRAM."""

    l1_bytes: int = 32 * KIB  #: on-die 32 K L1 data cache (paper §3)
    l2_bytes: int = 1 * MIB  #: on-die 1 MB L2 cache (paper §3)
    cache_line_bytes: int = 64
    l1_hit_cycles: float = 3.0
    l2_hit_cycles: float = 10.0
    dram_latency: float = 110e-9  #: measured load latency (paper §4)
    #: per-reference core cycles (address generation, loop control, the
    #: ALU op, TLB walk share); 6.5 reproduces the paper's Fig-6 delay
    #: crescendo (5.4 % slowdown at 600 MHz on the DRAM-latency walk)
    op_cycles: float = 6.5
    #: DRAM streaming bandwidth for bulk copies (DDR SDRAM era); used by
    #: the transpose's local phase and loopback transfers.
    dram_bandwidth: float = 1.0e9

    def __post_init__(self) -> None:
        check_positive("l1_bytes", self.l1_bytes)
        check_positive("l2_bytes", self.l2_bytes)
        if self.l2_bytes < self.l1_bytes:
            raise ValueError("L2 must be at least as large as L1")
        check_positive("dram_latency", self.dram_latency)
        check_positive("dram_bandwidth", self.dram_bandwidth)

    # ------------------------------------------------------------------
    def classify(self, buffer_bytes: int) -> str:
        """Which level a repeatedly-walked buffer of this size lives in."""
        if buffer_bytes <= self.l1_bytes:
            return "L1"
        if buffer_bytes <= self.l2_bytes:
            return "L2"
        return "DRAM"

    def strided_walk_cost(
        self,
        buffer_bytes: int,
        stride_bytes: int,
        n_refs: int,
    ) -> AccessCost:
        """Cost of ``n_refs`` strided references over a resident buffer.

        A stride at least as large as a cache line defeats spatial locality,
        so every reference pays the full level latency — this is exactly
        the access pattern of the paper's microbenchmarks (128 B stride
        over 32 MB for memory-bound, over 256 KB for L2-bound).  Strides
        smaller than a line amortize the miss across ``line/stride``
        references.
        """
        check_positive("buffer_bytes", buffer_bytes)
        check_positive("stride_bytes", stride_bytes)
        if n_refs < 0:
            raise ValueError(f"n_refs must be non-negative, got {n_refs}")

        level = self.classify(buffer_bytes)
        miss_fraction = min(1.0, stride_bytes / self.cache_line_bytes)

        op = self.op_cycles * n_refs
        if level == "L1":
            return AccessCost(op + self.l1_hit_cycles * n_refs, 0.0)
        if level == "L2":
            hit = self.l2_hit_cycles * n_refs * miss_fraction
            near = self.l1_hit_cycles * n_refs * (1.0 - miss_fraction)
            return AccessCost(op + hit + near, 0.0)
        stall = self.dram_latency * n_refs * miss_fraction
        near_cycles = self.l2_hit_cycles * n_refs * (1.0 - miss_fraction)
        return AccessCost(op + near_cycles, stall)

    def register_loop_cost(self, n_ops: int, cycles_per_op: float = 1.0) -> AccessCost:
        """Cost of a register-resident arithmetic loop (pure cycles)."""
        if n_ops < 0:
            raise ValueError(f"n_ops must be non-negative, got {n_ops}")
        return AccessCost(n_ops * cycles_per_op, 0.0)

    def stream_copy_cost(self, nbytes: int) -> AccessCost:
        """Cost of a bulk sequential copy of ``nbytes`` through DRAM.

        Streaming copies are bandwidth-bound, not latency-bound: the wall
        time is frequency-independent, with a small per-line bookkeeping
        cycle cost on the core.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        lines = nbytes / self.cache_line_bytes
        return AccessCost(
            cpu_cycles=lines * self.op_cycles,
            stall_seconds=nbytes / self.dram_bandwidth,
        )


#: Default memory hierarchy matching the paper's platform description.
PENTIUM_M_MEMORY = MemoryHierarchy()
