"""CPU activity states and their accounting semantics.

The power draw of a Pentium-M-class processor depends strongly on *what* it
is doing, not just on its frequency: retiring instructions out of registers
or on-die cache burns far more than sitting stalled on a DRAM access or
halted in a C-state.  The paper's microbenchmark section (Figs 6-8) is
precisely a characterisation of these per-activity differences, and the
cpuspeed result (Fig 3) hinges on which activities the kernel's
``/proc/stat`` counts as *busy*.

We model five activity states:

========== =============================================================
state      meaning
========== =============================================================
ACTIVE     retiring instructions from registers / L1 / L2
MEMSTALL   pipeline stalled on a DRAM access
PROTO      kernel protocol work: TCP/IP checksums, socket copies, MPI
           envelope handling — charged per byte moved and per message
SPIN       MPICH-1-style busy-wait polling for a message that has not
           arrived yet (select loop with zero timeout)
IDLE       halted / blocked in the kernel (C-state); a bulk rendezvous
           sender blocked in ``write()`` is here
========== =============================================================

``/proc/stat`` accounting: ACTIVE, MEMSTALL, PROTO and SPIN all appear as
*busy* jiffies (user or system time); only IDLE appears as idle.  SPIN
counting as busy is the mechanism behind the paper's central negative
result: the cpuspeed daemon sees a communication-bound MPI rank as ~100 %
utilised and never lowers the frequency.
"""

from __future__ import annotations

import enum

__all__ = ["CpuActivity", "BUSY_STATES", "is_busy_for_procstat"]


class CpuActivity(enum.Enum):
    """What the (single-core) CPU is doing right now."""

    ACTIVE = "active"
    MEMSTALL = "memstall"
    PROTO = "proto"
    SPIN = "spin"
    IDLE = "idle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: States that the OS time accounting reports as busy jiffies.
BUSY_STATES = frozenset(
    {
        CpuActivity.ACTIVE,
        CpuActivity.MEMSTALL,
        CpuActivity.PROTO,
        CpuActivity.SPIN,
    }
)


def is_busy_for_procstat(state: CpuActivity) -> bool:
    """Whether ``/proc/stat`` counts time in ``state`` as busy."""
    return state in BUSY_STATES
