"""CMOS power models (paper §2.1, Eqs. 1-3).

The paper's analysis rests on ``P ∝ c·f·V²`` for the dynamic power of a
CMOS processor.  We model the CPU's power at an operating point ``(f, V)``
in activity state ``s`` as::

    P_cpu(s, f, V) = α(s) · P_max · (f·V²)/(f_max·V_max²)      for busy states
    P_cpu(IDLE, f, V) = α(IDLE) · P_max · (V/V_max)²           when halted

where ``P_max`` is the fully-active draw at the fastest point and ``α(s)``
is a per-activity factor (see :mod:`repro.hardware.activity`).  The idle
state scales only with ``V²`` because a halted core's clock is gated —
what remains is leakage, which tracks supply voltage.

Node power adds a frequency-independent base (chipset, DRAM refresh, disk,
display off, PSU loss) and a small NIC-active term.  The base term is what
bounds achievable energy savings: as frequency drops, CPU power shrinks but
the base keeps integrating over the (slightly longer) run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.hardware.activity import CpuActivity
from repro.hardware.dvfs import DVFSTable, OperatingPoint
from repro.util.validation import check_fraction, check_nonnegative, check_positive

__all__ = ["ActivityFactors", "CpuPowerModel", "NodePowerModel", "DEFAULT_FACTORS"]


#: Default per-activity power factors, calibrated against the paper's
#: microbenchmark crescendos (see DESIGN.md §4 and EXPERIMENTS.md).
DEFAULT_FACTORS: Mapping[CpuActivity, float] = {
    CpuActivity.ACTIVE: 1.00,
    CpuActivity.MEMSTALL: 0.45,
    CpuActivity.PROTO: 0.70,
    CpuActivity.SPIN: 0.40,
    CpuActivity.IDLE: 0.12,
}


@dataclass(frozen=True)
class ActivityFactors:
    """Per-activity scaling of CPU power relative to fully active."""

    factors: Mapping[CpuActivity, float] = field(
        default_factory=lambda: dict(DEFAULT_FACTORS)
    )

    def __post_init__(self) -> None:
        missing = set(CpuActivity) - set(self.factors)
        if missing:
            raise ValueError(f"missing activity factors for {sorted(s.value for s in missing)}")
        for state, value in self.factors.items():
            check_fraction(f"activity factor for {state}", value)

    def __getitem__(self, state: CpuActivity) -> float:
        return self.factors[state]


class CpuPowerModel:
    """Power draw of the DVS-capable CPU.

    Parameters
    ----------
    table:
        The processor's DVFS ladder (used for normalisation constants).
    max_power:
        Fully-active power (watts) at the fastest operating point.
    factors:
        Per-activity scaling factors.
    """

    def __init__(
        self,
        table: DVFSTable,
        max_power: float = 21.0,
        factors: ActivityFactors | None = None,
    ):
        self.table = table
        self.max_power = check_positive("max_power", max_power)
        self.factors = factors or ActivityFactors()
        # Memoised _state_power per (point, state).  Everything involved
        # is immutable, so each cached float is exactly what the formula
        # below computes; values keep a strong reference to their point,
        # which pins its id for the cache's lifetime.
        self._state_watts: Dict[tuple, tuple] = {}

    def power(
        self,
        point: OperatingPoint,
        state: CpuActivity,
        utilization: float = 1.0,
        floor: CpuActivity = CpuActivity.IDLE,
    ) -> float:
        """Instantaneous CPU power in watts.

        ``utilization`` blends ``state`` with the ``floor`` state: a CPU
        doing protocol work for 40 % of the wall time and halted otherwise
        is ``(PROTO, 0.4, floor=IDLE)``; the MPICH-1 progress engine doing
        the same byte-work but busy-polling between chunks is
        ``(PROTO, 0.4, floor=SPIN)``.
        """
        check_fraction("utilization", utilization)
        busy = self._state_power(point, state)
        rest = self._state_power(point, floor)
        return utilization * busy + (1.0 - utilization) * rest

    def _state_power(self, point: OperatingPoint, state: CpuActivity) -> float:
        key = (id(point), state)
        hit = self._state_watts.get(key)
        if hit is not None:
            return hit[0]
        alpha = self.factors[state]
        if state is CpuActivity.IDLE:
            watts = alpha * self.max_power * self.table.relative_v2(point)
        else:
            watts = alpha * self.max_power * self.table.relative_fv2(point)
        self._state_watts[key] = (watts, point)
        return watts


@dataclass(frozen=True)
class NodePowerModel:
    """Whole-node power: base + CPU + NIC.

    Attributes
    ----------
    cpu:
        The CPU power model.
    base_power:
        Frequency-independent node power in watts (chipset, DRAM refresh,
        disk, PSU loss; laptop display assumed off as in the paper's
        measurement protocol).
    nic_active_power:
        Extra draw while the NIC is transmitting or receiving.
    gated_power:
        Whole-node draw while *power-gated* (suspend-to-RAM: DRAM
        refresh + wake logic + PSU tare).  Well below ``base_power`` —
        gating a node saves platform power that no frequency ladder can
        reach, which is exactly why the elastic control plane's
        horizontal knob wins at deep budget cuts.
    """

    cpu: CpuPowerModel
    base_power: float = 8.2
    nic_active_power: float = 0.6
    gated_power: float = 2.4

    def __post_init__(self) -> None:
        check_nonnegative("base_power", self.base_power)
        check_nonnegative("nic_active_power", self.nic_active_power)
        check_nonnegative("gated_power", self.gated_power)

    def power(
        self,
        point: OperatingPoint,
        state: CpuActivity,
        utilization: float = 1.0,
        nic_active: bool = False,
        floor: CpuActivity = CpuActivity.IDLE,
        core_fraction: float = 1.0,
    ) -> float:
        """Instantaneous node power in watts.

        ``core_fraction`` scales the CPU term by the powered-core share
        (per-core power gating: parked cores draw nothing).  The default
        1.0 takes the exact legacy path.
        """
        cpu_watts = self.cpu.power(point, state, utilization, floor)
        if core_fraction != 1.0:
            cpu_watts = core_fraction * cpu_watts
        total = self.base_power + cpu_watts
        if nic_active:
            total += self.nic_active_power
        return total

    def breakdown(
        self,
        point: OperatingPoint,
        state: CpuActivity,
        utilization: float = 1.0,
        nic_active: bool = False,
    ) -> Dict[str, float]:
        """Per-component power, for reporting and the PowerPack profiles."""
        return {
            "base": self.base_power,
            "cpu": self.cpu.power(point, state, utilization),
            "nic": self.nic_active_power if nic_active else 0.0,
        }
