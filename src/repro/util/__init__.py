"""Shared utilities: unit helpers and argument validation."""

from repro.util.units import (
    GHZ,
    GIB,
    KIB,
    MHZ,
    MIB,
    JOULES_PER_MWH,
    mhz,
    mibps,
    pretty_bytes,
    pretty_freq,
    pretty_time,
)
from repro.util.validation import (
    check_fraction,
    check_in,
    check_positive,
    check_nonnegative,
)

__all__ = [
    "MHZ",
    "GHZ",
    "KIB",
    "MIB",
    "GIB",
    "JOULES_PER_MWH",
    "mhz",
    "mibps",
    "pretty_bytes",
    "pretty_freq",
    "pretty_time",
    "check_fraction",
    "check_in",
    "check_positive",
    "check_nonnegative",
]
