"""Unit constants and formatting helpers.

Internally the simulator uses SI base units throughout: seconds, hertz,
bytes, watts, joules.  These helpers exist so that model code reads like the
paper ("1.4 GHz", "32 MB buffer", "100 Mb/s") without magic numbers.
"""

from __future__ import annotations

__all__ = [
    "MHZ",
    "GHZ",
    "KIB",
    "MIB",
    "GIB",
    "JOULES_PER_MWH",
    "mhz",
    "mibps",
    "pretty_bytes",
    "pretty_freq",
    "pretty_time",
]

MHZ = 1_000_000.0
GHZ = 1_000_000_000.0

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: ACPI smart batteries report capacity in milliwatt-hours (paper §3:
#: "1 mWh = 3.6 Joules").
JOULES_PER_MWH = 3.6


def mhz(value: float) -> float:
    """Frequency in Hz from a value in MHz (e.g. ``mhz(1400)``)."""
    return value * MHZ


def mibps(value: float) -> float:
    """Bytes/second from MiB/s."""
    return value * MIB


def pretty_freq(hz: float) -> str:
    """Human-readable frequency, matching the paper's axis labels."""
    if hz >= GHZ:
        text = f"{hz / GHZ:.4g}"
        return f"{text}GHz"
    return f"{hz / MHZ:.4g}MHz"


def pretty_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or suffix == "GiB":
            return f"{value:.4g}{suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def pretty_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds >= 60:
        minutes, secs = divmod(seconds, 60)
        return f"{int(minutes)}m{secs:.3g}s"
    if seconds >= 1:
        return f"{seconds:.4g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.4g}ms"
    return f"{seconds * 1e6:.4g}us"
