"""Small argument-validation helpers used across the model layer.

These raise ``ValueError`` with messages naming the offending parameter so
configuration mistakes surface at model construction, not deep inside a
simulation run.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

__all__ = ["check_positive", "check_nonnegative", "check_fraction", "check_in"]

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: T, allowed: Iterable[T]) -> T:
    """Require ``value`` to be one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
