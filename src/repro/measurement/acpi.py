"""ACPI smart-battery emulation (the paper's primary instrument).

Paper §3: *"An ACPI smart battery records battery states to report
remaining capacity in mWh (1 mWh = 3.6 Joules).  This technique provides
polling data updated every 15-20 seconds."*

The emulated battery integrates the node's ground-truth power timeline,
but exposes it the way the real instrument does: remaining capacity
quantized to whole milliwatt-hours, refreshed only every
``refresh_interval`` seconds.  Those two error sources (±0.5 mWh
quantization, up to one refresh interval of staleness) are exactly why
the paper measures long runs and iterates applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.hardware.node import Node
from repro.hardware.timeline import EnergyCursor
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import Process
from repro.util.units import JOULES_PER_MWH
from repro.util.validation import check_positive

__all__ = ["BatteryReading", "SmartBattery"]


@dataclass(frozen=True)
class BatteryReading:
    """One ACPI poll result."""

    time: float  #: simulation time of the *refresh* this reading reflects
    remaining_mwh: int  #: quantized remaining capacity

    def joules_consumed_since(self, earlier: "BatteryReading") -> float:
        """Energy between two readings (the paper's measurement, Eq. 3)."""
        return (earlier.remaining_mwh - self.remaining_mwh) * JOULES_PER_MWH


class SmartBattery:
    """One laptop's battery, discharging through the node's power draw."""

    def __init__(
        self,
        node: Node,
        full_capacity_mwh: int = 53_000,  # Inspiron 8600 ~53 Wh pack
        refresh_interval: float = 17.5,
    ):
        check_positive("full_capacity_mwh", full_capacity_mwh)
        check_positive("refresh_interval", refresh_interval)
        self.node = node
        self.engine: Engine = node.engine
        self.full_capacity_mwh = int(full_capacity_mwh)
        self.refresh_interval = refresh_interval
        self._attach_time: Optional[float] = None
        self._drain: Optional[EnergyCursor] = None
        self._last_reading: Optional[BatteryReading] = None
        self._process: Optional[Process] = None
        self._stopped = False
        #: every refresh the battery produced, oldest first
        self.history: List[BatteryReading] = []

    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Begin discharging (the paper's "disconnect from wall power")."""
        if self._process is not None:
            raise RuntimeError("battery already started")
        self._attach_time = self.engine.now
        self._drain = self.node.timeline.cursor(self.engine.now)
        self._last_reading = BatteryReading(
            time=self.engine.now, remaining_mwh=self.full_capacity_mwh
        )
        self.history.append(self._last_reading)
        self._process = self.engine.process(
            self._refresh_loop(), name=f"battery[node{self.node.node_id}]"
        )
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def _refresh_loop(self) -> Generator[Event, object, None]:
        while not self._stopped:
            yield self.engine.timeout(self.refresh_interval)
            if self._stopped:
                return
            self._refresh()

    def _refresh(self) -> None:
        assert self._drain is not None
        # Incremental discharge integration: the cursor walks only the
        # change points since the previous refresh (their window energies
        # telescope to the exact integral since attach), instead of
        # re-integrating the whole growing trace every tick.
        self._drain.advance(self.engine.now)
        joules = self._drain.joules
        remaining = self.full_capacity_mwh - round(joules / JOULES_PER_MWH)
        if remaining < 0:
            raise RuntimeError(
                f"battery on node {self.node.node_id} ran out of charge"
            )
        self._last_reading = BatteryReading(
            time=self.engine.now, remaining_mwh=int(remaining)
        )
        self.history.append(self._last_reading)

    # ------------------------------------------------------------------
    def read(self) -> BatteryReading:
        """What ACPI reports *right now*: the last refresh's value."""
        if self._last_reading is None:
            raise RuntimeError("battery not started")
        return self._last_reading

    def true_energy(self, t0: float, t1: float) -> float:
        """Ground truth for tests (not available on real hardware)."""
        return self.node.timeline.energy(t0, t1)
