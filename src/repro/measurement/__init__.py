"""PowerPack-style measurement substrate.

Emulated instruments (ACPI smart battery, Baytech outlet meter) sampling
the simulator's ground-truth power timelines with realistic quantization
and refresh rates, plus the coordination session and the multi-node data
filtering/alignment helpers the paper's tool suite provided.
"""

from repro.measurement.acpi import BatteryReading, SmartBattery
from repro.measurement.alignment import (
    aggregate_power,
    align_profiles,
    detect_outlier_runs,
    step_resample,
    trim_to_interval,
)
from repro.measurement.baytech import BaytechOutlet, BaytechUnit, OutletSample
from repro.measurement.powerpack import ClusterMeasurement, PowerPackSession
from repro.measurement.profiles import (
    PowerProfile,
    cluster_power_profile,
    profile_summary,
)

__all__ = [
    "SmartBattery",
    "BatteryReading",
    "BaytechOutlet",
    "BaytechUnit",
    "OutletSample",
    "PowerPackSession",
    "ClusterMeasurement",
    "step_resample",
    "align_profiles",
    "aggregate_power",
    "detect_outlier_runs",
    "trim_to_interval",
    "PowerProfile",
    "cluster_power_profile",
    "profile_summary",
]
