"""PowerPack: coordinated cluster-wide power measurement (paper §3).

The paper's PowerPack suite coordinates per-node instruments and aligns
their data with application events.  This module is the coordination
layer: it attaches an ACPI battery and a Baytech outlet to every node,
reproduces the measurement protocol (charge, disconnect, settle, run,
poll), records timestamped markers from the application, and produces a
:class:`ClusterMeasurement` combining both instruments with the simulator's
ground truth for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hardware.cluster import Cluster
from repro.measurement.acpi import BatteryReading, SmartBattery
from repro.measurement.baytech import BaytechUnit
from repro.util.units import JOULES_PER_MWH

__all__ = ["ClusterMeasurement", "PowerPackSession"]


@dataclass(frozen=True)
class ClusterMeasurement:
    """Energy/delay over one measured interval, from every instrument."""

    start: float
    end: float
    battery_energy: float  #: joules, from ACPI capacity deltas (quantized)
    baytech_energy: float  #: joules, from outlet minute-samples
    true_energy: float  #: joules, exact (simulation ground truth)
    per_node_battery: Tuple[float, ...] = ()
    markers: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def battery_error(self) -> float:
        """Relative error of the ACPI path vs ground truth."""
        if self.true_energy == 0:
            return 0.0
        return abs(self.battery_energy - self.true_energy) / self.true_energy

    @property
    def baytech_error(self) -> float:
        """Relative error of the Baytech path vs ground truth."""
        if self.true_energy == 0:
            return 0.0
        return abs(self.baytech_energy - self.true_energy) / self.true_energy


class PowerPackSession:
    """One measured experiment on a cluster.

    Usage::

        session = PowerPackSession(cluster)
        session.begin()          # charge, disconnect wall power, settle
        ...                      # run the job (advance the engine)
        session.mark("app_end")
        report = session.finish()

    ``finish`` waits for one more battery refresh past the end of the
    interval, as the paper's protocol does, so the capacity delta covers
    the whole run.
    """

    def __init__(
        self,
        cluster: Cluster,
        battery_refresh: float = 17.5,
        meter_interval: float = 60.0,
        settle_time: float = 0.0,
    ):
        if settle_time < 0:
            raise ValueError(f"settle_time must be non-negative, got {settle_time}")
        self.cluster = cluster
        self.engine = cluster.engine
        self.battery_refresh = battery_refresh
        self.meter_interval = meter_interval
        self.settle_time = settle_time
        self.batteries: List[SmartBattery] = [
            SmartBattery(node, refresh_interval=battery_refresh)
            for node in cluster.nodes
        ]
        self.baytech = BaytechUnit(cluster.nodes, poll_interval=meter_interval)
        self.markers: Dict[str, float] = {}
        self._start: Optional[float] = None
        self._start_readings: List[BatteryReading] = []

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start instruments (protocol steps 1-3: charge/disconnect/settle)."""
        if self._start is not None:
            raise RuntimeError("session already begun")
        for battery in self.batteries:
            battery.start()
        self.baytech.start()
        if self.settle_time > 0:
            # Paper: "allow batteries to discharge for approximately 5
            # minutes to ensure accurate measurements".
            self.engine.run(until=self.engine.now + self.settle_time)
        self._start = self.engine.now
        self._start_readings = [b.read() for b in self.batteries]
        self.mark("measure_begin")

    def mark(self, name: str) -> None:
        """Record an application timestamp (PowerPack's libxutil role)."""
        self.markers[name] = self.engine.now

    def finish(self) -> ClusterMeasurement:
        """Stop measuring and assemble the report."""
        if self._start is None:
            raise RuntimeError("session never begun")
        end = self.engine.now
        self.mark("measure_end")
        # Let every instrument produce one more sample so both the battery
        # capacity deltas and the outlet minute-averages cover the full
        # interval (protocol step 4: "record polling data").
        horizon = max(self.battery_refresh, self.meter_interval)
        self.engine.run(until=end + horizon + 1e-9)
        for battery in self.batteries:
            battery.stop()
        self.baytech.stop()

        per_node = []
        for battery, first in zip(self.batteries, self._start_readings):
            # Use the *first* refresh at/after the end of the interval —
            # later refreshes would fold in idle-tail drain.
            last = next(
                (r for r in battery.history if r.time >= end), battery.read()
            )
            per_node.append(last.joules_consumed_since(first))
        battery_energy = sum(per_node)
        baytech_energy = self.baytech.total_energy_estimate(self._start, end)
        true_energy = self.cluster.total_energy(self._start, end)
        return ClusterMeasurement(
            start=self._start,
            end=end,
            battery_energy=battery_energy,
            baytech_energy=baytech_energy,
            true_energy=true_energy,
            per_node_battery=tuple(per_node),
            markers=dict(self.markers),
        )

    # ------------------------------------------------------------------
    @property
    def quantization_error_bound(self) -> float:
        """Worst-case ACPI error in joules (±0.5 mWh/node + one refresh
        of idle-tail drift per node)."""
        n = len(self.batteries)
        return n * (0.5 * JOULES_PER_MWH)
