"""Baytech remote power-strip emulation (the paper's second instrument).

Paper §3: *"With Baytech proprietary hardware and software (GPML50),
power related polling data is updated each minute for all outlets.  Data
is reported to a management unit using the SNMP protocol."*

Each outlet reports the average power over the last polling interval —
coarse, but independent of the battery path, which is how the paper
cross-checks ACPI numbers.  The management unit aggregates outlets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

import numpy as np

from repro.hardware.node import Node
from repro.hardware.timeline import EnergyCursor
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import Process
from repro.util.validation import check_positive

__all__ = ["OutletSample", "BaytechOutlet", "BaytechUnit"]


@dataclass(frozen=True)
class OutletSample:
    """One SNMP poll: average power over the preceding interval."""

    time: float  #: end of the averaging interval
    watts: float  #: average power over the interval


class BaytechOutlet:
    """One metered outlet feeding one node."""

    def __init__(self, node: Node, poll_interval: float = 60.0):
        check_positive("poll_interval", poll_interval)
        self.node = node
        self.engine: Engine = node.engine
        self.poll_interval = poll_interval
        self.samples: List[OutletSample] = []
        self._process: Optional[Process] = None
        self._stopped = False
        self._window_start: Optional[float] = None
        self._meter: Optional[EnergyCursor] = None
        #: whether the outlet supplies power (PowerPack also uses the
        #: Baytech gear to disconnect wall power before battery runs)
        self.switched_on = True

    # ------------------------------------------------------------------
    def start(self) -> Process:
        if self._process is not None:
            raise RuntimeError("outlet already started")
        self._window_start = self.engine.now
        self._meter = self.node.timeline.cursor(self.engine.now)
        self._process = self.engine.process(
            self._poll_loop(), name=f"baytech[node{self.node.node_id}]"
        )
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def switch(self, on: bool) -> None:
        """Remote on/off control (used by the measurement protocol)."""
        self.switched_on = on

    def _poll_loop(self) -> Generator[Event, object, None]:
        while not self._stopped:
            yield self.engine.timeout(self.poll_interval)
            if self._stopped:
                return
            assert self._window_start is not None and self._meter is not None
            now = self.engine.now
            # Incremental window integral: the cursor only walks change
            # points recorded since the previous poll, and its increment
            # equals the window's scalar energy query bit-for-bit.
            joules = self._meter.advance(now)
            watts = (
                joules / (now - self._window_start) if self.switched_on else 0.0
            )
            self.samples.append(OutletSample(time=now, watts=watts))
            self._window_start = now

    # ------------------------------------------------------------------
    def energy_estimate(self, t0: float, t1: float) -> float:
        """Joules over ``[t0, t1]`` reconstructed from minute samples.

        Uses the samples whose averaging windows overlap the interval,
        weighting each by the overlap — the best one can do with the
        instrument's resolution.
        """
        if t1 < t0:
            raise ValueError(f"interval reversed: [{t0}, {t1}]")
        if not self.samples:
            return 0.0
        ends = np.array([s.time for s in self.samples])
        watts = np.array([s.watts for s in self.samples])
        overlap = np.minimum(t1, ends) - np.maximum(t0, ends - self.poll_interval)
        return float(watts @ np.maximum(overlap, 0.0))


class BaytechUnit:
    """The management unit: many outlets polled over SNMP."""

    def __init__(self, nodes: List[Node], poll_interval: float = 60.0):
        if not nodes:
            raise ValueError("BaytechUnit needs at least one outlet")
        self.outlets = [BaytechOutlet(node, poll_interval) for node in nodes]

    def start(self) -> None:
        for outlet in self.outlets:
            outlet.start()

    def stop(self) -> None:
        for outlet in self.outlets:
            outlet.stop()

    def switch_all(self, on: bool) -> None:
        for outlet in self.outlets:
            outlet.switch(on)

    def total_energy_estimate(self, t0: float, t1: float) -> float:
        """Cluster-wide joules over ``[t0, t1]``."""
        return sum(outlet.energy_estimate(t0, t1) for outlet in self.outlets)
