"""Power profiles: the power-vs-time view PowerPack produces.

The paper's tool suite records per-node power traces and aligns them with
application events (that is how Figs 3-8 were assembled from raw data).
This module extracts those profiles from the simulation — either from the
exact node timelines or from instrument samples — onto a common grid, and
renders compact text summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.cluster import Cluster
from repro.measurement.alignment import align_profiles

__all__ = ["PowerProfile", "cluster_power_profile", "profile_summary"]


@dataclass(frozen=True)
class PowerProfile:
    """Aligned per-node power traces over one interval."""

    grid: np.ndarray  #: sample times (seconds)
    node_power: np.ndarray  #: shape (n_nodes, len(grid)), watts

    @property
    def total_power(self) -> np.ndarray:
        """Cluster power at each grid point."""
        return self.node_power.sum(axis=0)

    @property
    def n_nodes(self) -> int:
        return self.node_power.shape[0]

    def energy(self) -> float:
        """Trapezoid-free energy estimate (zero-order hold, like meters)."""
        if len(self.grid) < 2:
            return 0.0
        dt = float(self.grid[1] - self.grid[0])
        return float(self.total_power[:-1].sum() * dt)

    def node_energy(self, node: int) -> float:
        if len(self.grid) < 2:
            return 0.0
        dt = float(self.grid[1] - self.grid[0])
        return float(self.node_power[node, :-1].sum() * dt)


def cluster_power_profile(
    cluster: Cluster,
    t0: float,
    t1: float,
    dt: float = 0.1,
) -> PowerProfile:
    """Sample every node's ground-truth timeline onto a common grid."""
    profiles: Dict[int, List[Tuple[float, float]]] = {}
    for node in cluster.nodes:
        segments = node.timeline.segments()
        # Ensure a sample at/before t0 exists (segments start at time 0).
        profiles[node.node_id] = segments
    grid, matrix = align_profiles(profiles, t0, t1, dt)
    return PowerProfile(grid=grid, node_power=matrix)


def profile_summary(
    profile: PowerProfile,
    markers: Optional[Dict[str, float]] = None,
    width: int = 50,
) -> str:
    """A text sparkline of cluster power plus per-node statistics."""
    total = profile.total_power
    lines = []
    lo, hi = float(total.min()), float(total.max())
    span = hi - lo if hi > lo else 1.0
    glyphs = " .:-=+*#%@"
    # Downsample the trace to `width` columns.
    idx = np.linspace(0, len(total) - 1, width).astype(int)
    chars = "".join(
        glyphs[min(len(glyphs) - 1, int((total[i] - lo) / span * (len(glyphs) - 1)))]
        for i in idx
    )
    lines.append(
        f"cluster power [{lo:.1f}..{hi:.1f} W] over "
        f"[{profile.grid[0]:.1f}s..{profile.grid[-1]:.1f}s]:"
    )
    lines.append(f"|{chars}|")
    means = profile.node_power.mean(axis=1)
    lines.append(
        "per-node mean power (W): "
        + " ".join(f"{m:.1f}" for m in means)
    )
    if markers:
        ordered = sorted(markers.items(), key=lambda kv: kv[1])
        lines.append(
            "markers: " + ", ".join(f"{name}@{t:.1f}s" for name, t in ordered)
        )
    return "\n".join(lines)
