"""Power profiles: the power-vs-time view PowerPack produces.

The paper's tool suite records per-node power traces and aligns them with
application events (that is how Figs 3-8 were assembled from raw data).
This module extracts those profiles from the simulation — either from the
exact node timelines or from instrument samples — onto a common grid, and
renders compact text summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hardware.cluster import Cluster
from repro.measurement.alignment import sample_grid

__all__ = [
    "PowerProfile",
    "cluster_power_profile",
    "cluster_windowed_profile",
    "profile_summary",
]


@dataclass(frozen=True)
class PowerProfile:
    """Aligned per-node power traces over one interval."""

    grid: np.ndarray  #: sample times (seconds)
    node_power: np.ndarray  #: shape (n_nodes, len(grid)), watts
    #: exact per-node joules over the profiled interval, set when the
    #: profile was built by integration (:func:`cluster_windowed_profile`)
    #: rather than point sampling; ``None`` for sampled profiles.
    node_energy_j: Optional[np.ndarray] = None

    @property
    def total_power(self) -> np.ndarray:
        """Cluster power at each grid point."""
        return self.node_power.sum(axis=0)

    @property
    def n_nodes(self) -> int:
        return self.node_power.shape[0]

    def energy(self) -> float:
        """Interval energy: exact when integrated, else zero-order hold."""
        if self.node_energy_j is not None:
            return float(self.node_energy_j.sum())
        if len(self.grid) < 2:
            return 0.0
        dt = float(self.grid[1] - self.grid[0])
        return float(self.total_power[:-1].sum() * dt)

    def node_energy(self, node: int) -> float:
        if self.node_energy_j is not None:
            return float(self.node_energy_j[node])
        if len(self.grid) < 2:
            return 0.0
        dt = float(self.grid[1] - self.grid[0])
        return float(self.node_power[node, :-1].sum() * dt)


def cluster_power_profile(
    cluster: Cluster,
    t0: float,
    t1: float,
    dt: float = 0.1,
) -> PowerProfile:
    """Sample every node's ground-truth timeline onto a common grid.

    One vectorised ``sample(times)`` per node against the frozen series
    (zero-order hold, like the instruments) instead of walking segment
    lists per grid point.
    """
    grid = sample_grid(t0, t1, dt)
    matrix = cluster.series().sample_matrix(grid)
    return PowerProfile(grid=grid, node_power=matrix)


def cluster_windowed_profile(
    cluster: Cluster,
    t0: float,
    t1: float,
    dt: float = 0.1,
) -> PowerProfile:
    """Exact per-cell average-power profile (energy-preserving).

    Where :func:`cluster_power_profile` point-samples (what a meter
    sees), this integrates: cell ``k`` holds the node's true average
    power over ``[grid[k], grid[k] + dt]`` via one batch
    ``windowed_average`` per node, so ``profile.energy()`` equals the
    cluster's exact interval energy instead of a zero-order-hold
    estimate.
    """
    series = cluster.series()
    edges = sample_grid(t0, t1, dt)
    matrix = series.windowed_average_matrix(edges)
    return PowerProfile(
        grid=edges[:-1],
        node_power=matrix,
        node_energy_j=series.node_energies(float(edges[0]), float(edges[-1])),
    )


def profile_summary(
    profile: PowerProfile,
    markers: Optional[Dict[str, float]] = None,
    width: int = 50,
) -> str:
    """A text sparkline of cluster power plus per-node statistics."""
    total = profile.total_power
    lines = []
    lo, hi = float(total.min()), float(total.max())
    span = hi - lo if hi > lo else 1.0
    glyphs = " .:-=+*#%@"
    # Downsample the trace to `width` columns.
    idx = np.linspace(0, len(total) - 1, width).astype(int)
    chars = "".join(
        glyphs[min(len(glyphs) - 1, int((total[i] - lo) / span * (len(glyphs) - 1)))]
        for i in idx
    )
    lines.append(
        f"cluster power [{lo:.1f}..{hi:.1f} W] over "
        f"[{profile.grid[0]:.1f}s..{profile.grid[-1]:.1f}s]:"
    )
    lines.append(f"|{chars}|")
    means = profile.node_power.mean(axis=1)
    lines.append(
        "per-node mean power (W): "
        + " ".join(f"{m:.1f}" for m in means)
    )
    if markers:
        ordered = sorted(markers.items(), key=lambda kv: kv[1])
        lines.append(
            "markers: " + ", ".join(f"{name}@{t:.1f}s" for name, t in ordered)
        )
    return "\n".join(lines)
