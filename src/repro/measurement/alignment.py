"""Filtering and alignment of multi-node measurement data (paper §3).

*"Lastly, we created software to filter and align data sets from
individual nodes for use in power and performance analysis and
optimization."*

Real instruments sample each node on their own clocks; analysis needs the
profiles on a common grid, trimmed to the application interval, with
outlier runs removed.  These helpers are pure numpy functions so they are
usable on any ``(time, value)`` sample streams — battery capacities,
outlet powers, or trace-derived series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "sample_grid",
    "step_resample",
    "align_profiles",
    "aggregate_power",
    "detect_outlier_runs",
    "trim_to_interval",
]

Samples = Sequence[Tuple[float, float]]


def sample_grid(t0: float, t1: float, dt: float) -> np.ndarray:
    """The common sampling grid over ``[t0, t1]`` with spacing ``dt``.

    The single grid-construction rule every aligned view shares (profiles,
    windowed averages, exports), so their cells always line up.
    """
    if t1 <= t0:
        raise ValueError(f"alignment interval reversed or empty: [{t0}, {t1}]")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    return np.arange(t0, t1 + dt / 2, dt)


def step_resample(samples: Samples, grid: np.ndarray) -> np.ndarray:
    """Zero-order-hold resampling of ``(time, value)`` samples onto ``grid``.

    Grid points before the first sample hold the first value (instruments
    report their power-on reading until the first refresh).
    """
    if len(samples) == 0:
        raise ValueError("cannot resample an empty stream")
    times = np.asarray([t for t, _ in samples], dtype=float)
    values = np.asarray([v for _, v in samples], dtype=float)
    if np.any(np.diff(times) < 0):
        raise ValueError("sample times must be non-decreasing")
    idx = np.searchsorted(times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(values) - 1)
    return values[idx]


def align_profiles(
    profiles: Dict[int, Samples],
    t0: float,
    t1: float,
    dt: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resample per-node streams onto one grid over ``[t0, t1]``.

    Returns ``(grid, matrix)`` where ``matrix[i]`` is node ``i``'s profile
    (rows ordered by node id).
    """
    grid = sample_grid(t0, t1, dt)
    rows = [
        step_resample(profiles[node], grid) for node in sorted(profiles.keys())
    ]
    return grid, np.vstack(rows)


def aggregate_power(matrix: np.ndarray) -> np.ndarray:
    """Cluster total power at each grid point (sum over nodes)."""
    return np.asarray(matrix).sum(axis=0)


def detect_outlier_runs(
    values: Sequence[float], k_sigma: float = 3.0
) -> List[int]:
    """Indices of runs whose value deviates more than ``k_sigma`` from the
    remaining runs' mean (leave-one-out, so one bad run cannot hide by
    inflating the global deviation).

    The paper: *"we repeated each experiment at least 3 times or more to
    identify outliers"* — this is that filter.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size < 3:
        return []
    outliers = []
    for i in range(arr.size):
        rest = np.delete(arr, i)
        sigma = rest.std()
        if sigma == 0:
            if arr[i] != rest[0]:
                outliers.append(i)
            continue
        if abs(arr[i] - rest.mean()) > k_sigma * sigma:
            outliers.append(i)
    return outliers


def trim_to_interval(samples: Samples, t0: float, t1: float) -> List[Tuple[float, float]]:
    """Samples whose timestamps fall within ``[t0, t1]``."""
    if t1 < t0:
        raise ValueError(f"interval reversed: [{t0}, {t1}]")
    return [(t, v) for t, v in samples if t0 <= t <= t1]
