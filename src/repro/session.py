"""The stable front door: one object that carries your run options.

Everything :class:`Session` does is available from the deep modules —
:func:`repro.analysis.parallel.run_sweep`,
:func:`repro.faults.sweep.run_chaos_sweep`,
:func:`repro.experiments.registry.run_experiment`,
:func:`repro.analysis.runner.run_measured` — with the same keywords.
The session exists so scripts and notebooks state their policy *once*
(cache, parallelism, tracing, calibration) and every call inherits it::

    from repro import Session, SweepTask, Tracer
    from repro.workloads import NasFT

    s = Session(use_cache=True, jobs=0, tracer=Tracer())
    points = s.sweep(
        [SweepTask(NasFT("S", n_ranks=4, iterations=2), "stat",
                   frequency=f) for f in (6e8, 1e9, 1.4e9)]
    )
    s.export_trace("sweep.trace.json")

A session is cheap and stateless apart from its options and its shared
:class:`~repro.cache.store.RunCache` handle; make as many as you like.
"""

from __future__ import annotations

from contextlib import nullcontext
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.cache.context import resolve_cache
from repro.cache.store import RunCache
from repro.hardware.calibration import Calibration
from repro.obs.tracer import Tracer, tracing

__all__ = ["Session"]


class Session:
    """Carries run options across sweeps, experiments, and single runs.

    Parameters (all keyword-only, all optional — the default session is
    serial, uncached, and untraced, exactly like calling the deep
    functions bare):

    ``use_cache`` / ``cache_dir``
        As in :func:`~repro.analysis.parallel.run_sweep`: ``True`` opens
        a content-addressed :class:`~repro.cache.store.RunCache` at
        ``cache_dir`` (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro/runs``); a :class:`RunCache` is shared as-is.
        The session resolves the cache once, so every call shares one
        store and one hit/miss ledger (:attr:`cache`).
    ``jobs``
        Worker processes for sweeps: ``None`` = serial in-process,
        ``0`` = one per core, ``N`` = N workers.
    ``tracer``
        A :class:`~repro.obs.tracer.Tracer` recording everything the
        session runs (forces sweeps serial — see
        :func:`~repro.analysis.parallel.run_sweep`).  Feeds
        :meth:`attribution` and :meth:`export_trace`.
    ``backend``
        Sweep execution backend — ``"serial"``, ``"process"``, ``"mpi"``,
        or an :class:`~repro.exec.backends.ExecBackend` instance;
        ``None`` infers from ``jobs``.  Results are bit-identical across
        backends (see ``docs/BACKENDS.md``).
    ``retry``
        A :class:`~repro.exec.retry.RetryPolicy` applied to every sweep
        task (``None`` = the sweep default: retry lost workers and
        timeouts, fail deterministic errors fast).
    ``calibration``
        Default :class:`~repro.hardware.calibration.Calibration` for
        :meth:`run` (sweep tasks carry their own).
    """

    def __init__(
        self,
        *,
        use_cache: Union[bool, RunCache] = False,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        backend: object = None,
        retry: object = None,
        calibration: Optional[Calibration] = None,
    ) -> None:
        self.cache: Optional[RunCache] = resolve_cache(use_cache, cache_dir)
        self.jobs = jobs
        self.tracer = tracer
        self.backend = backend
        self.retry = retry
        self.calibration = calibration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"jobs={self.jobs!r}",
            f"cached={self.cache is not None}",
            f"traced={self.tracer is not None}",
        ]
        return f"Session({', '.join(parts)})"

    # -- single runs ---------------------------------------------------
    def run(self, workload, strategy, cluster_factory=None, spec=None):
        """One measured run (traced when the session has a tracer).

        ``spec`` is an optional
        :class:`~repro.hardware.spec.ClusterSpec` selecting the hardware
        (``None`` = the paper's homogeneous cluster sized to the
        workload).  Returns a
        :class:`~repro.analysis.runner.MeasuredRun`.
        """
        from repro.analysis.runner import run_measured, traced_run

        if self.tracer is not None:
            return traced_run(
                workload,
                strategy,
                self.tracer,
                calibration=self.calibration,
                cluster_factory=cluster_factory,
                spec=spec,
            )
        return run_measured(
            workload,
            strategy,
            calibration=self.calibration,
            cluster_factory=cluster_factory,
            spec=spec,
        )

    # -- sweeps --------------------------------------------------------
    def sweep(self, tasks: Sequence) -> List:
        """:func:`~repro.analysis.parallel.run_sweep` with this
        session's cache, jobs, and tracer."""
        from repro.analysis.parallel import run_sweep

        return run_sweep(
            tasks,
            jobs=self.jobs,
            use_cache=self.cache if self.cache is not None else False,
            tracer=self.tracer,
            backend=self.backend,
            retry=self.retry,
        )

    def chaos_sweep(self, tasks: Sequence) -> List:
        """:func:`~repro.faults.sweep.run_chaos_sweep` with this
        session's cache, jobs, and tracer."""
        from repro.faults.sweep import run_chaos_sweep

        return run_chaos_sweep(
            tasks,
            jobs=self.jobs,
            use_cache=self.cache if self.cache is not None else False,
            tracer=self.tracer,
            backend=self.backend,
            retry=self.retry,
        )

    def serving_sweep(self, tasks: Sequence) -> List:
        """:func:`~repro.serving.sweep.run_serving_sweep` with this
        session's cache, jobs, and tracer."""
        from repro.serving.sweep import run_serving_sweep

        return run_serving_sweep(
            tasks,
            jobs=self.jobs,
            use_cache=self.cache if self.cache is not None else False,
            tracer=self.tracer,
            backend=self.backend,
            retry=self.retry,
        )

    def run_serving(self, tasks):
        """Run serving tasks under this session's options.

        ``tasks`` is one :class:`~repro.serving.sweep.ServingTask` or a
        sequence of them; a single task returns its
        :class:`~repro.serving.sweep.ServingOutcome`, a sequence returns
        the outcome list (input order).  Caching, parallelism, and
        tracing follow the session exactly like :meth:`sweep` /
        :meth:`chaos_sweep`.
        """
        from repro.serving.sweep import ServingTask

        if isinstance(tasks, ServingTask):
            return self.serving_sweep([tasks])[0]
        return self.serving_sweep(tasks)

    # -- experiments ---------------------------------------------------
    def experiment(self, experiment_id: str, **kwargs):
        """:func:`~repro.experiments.registry.run_experiment` under this
        session's cache and jobs (tracer installed for the call; a
        traced experiment runs its sweeps serially)."""
        from repro.experiments.registry import run_experiment

        jobs = self.jobs if self.tracer is None else None
        backend = self.backend if self.tracer is None else None
        scope = (
            tracing(self.tracer) if self.tracer is not None else nullcontext()
        )
        with scope:
            return run_experiment(
                experiment_id,
                use_cache=self.cache if self.cache is not None else False,
                jobs=jobs,
                backend=backend,
                retry=self.retry,
                **kwargs,
            )

    # -- observability -------------------------------------------------
    def attribution(self, run, *, categories=None, label="attribution"):
        """Per-rank, per-phase energy attribution of a traced run.

        ``run`` is the :class:`~repro.analysis.runner.MeasuredRun` that
        :meth:`run` returned; the session must have a tracer (the spans
        joined against the power timeline live in its ring buffers).
        Returns an :class:`~repro.metrics.attribution.AttributionReport`.
        """
        if self.tracer is None:
            raise ValueError(
                "attribution needs a traced session: "
                "Session(tracer=Tracer())"
            )
        from repro.metrics.attribution import (
            DEFAULT_CATEGORIES,
            build_attribution_report,
        )

        return build_attribution_report(
            run.cluster,
            self.tracer,
            run.spmd.start,
            run.spmd.end,
            categories=(
                tuple(categories) if categories else DEFAULT_CATEGORIES
            ),
            label=label,
        )

    def export_trace(
        self, path: Union[str, Path], format: str = "chrome", run=None
    ) -> int:
        """Write the session tracer's records to ``path``.

        ``format`` is ``"chrome"`` (trace-event JSON, loads in Perfetto
        and ``chrome://tracing``) or ``"jsonl"``.  Passing a measured
        ``run`` (what :meth:`run` returned) additionally exports each
        node's power timeline as one counter track per node, read off
        the frozen power series, so the Perfetto view shows watts next
        to the traced phases.  Returns the number of records written.
        """
        if self.tracer is None:
            raise ValueError(
                "export_trace needs a traced session: "
                "Session(tracer=Tracer())"
            )
        from repro.obs.export import (
            TraceData,
            export_chrome_trace,
            export_jsonl,
            power_counter_records,
        )

        source = TraceData.from_tracer(self.tracer)
        if run is not None:
            source.counters.extend(
                power_counter_records(
                    run.cluster, run.spmd.start, run.spmd.end
                )
            )
        if format == "chrome":
            return export_chrome_trace(path, source)
        if format == "jsonl":
            return export_jsonl(path, source)
        raise ValueError(
            f"unknown trace format {format!r}; use 'chrome' or 'jsonl'"
        )
