"""Pluggable sweep execution backends.

A backend answers one question: *given N independent, deterministic
tasks, run them all and stream each result back as it lands*.  The three
implementations cover the deployment spectrum:

* :class:`SerialBackend` — in-process, zero dependencies, the oracle
  every other backend must match bit for bit;
* :class:`ProcessPoolBackend` — one worker process per core (or an
  explicit count), with *broken-pool containment*: a worker killed
  mid-task (SIGKILL, OOM) costs exactly the in-flight tasks one retry
  attempt each on a respawned pool, instead of cascading a misleading
  ``BrokenProcessPool`` failure to every remaining task;
* :class:`~repro.exec.mpi.MpiBackend` — mpi4py ranks when MPI is
  present, degrading gracefully to a single-rank emulator when not.

Every attempt runs under the :class:`~repro.exec.retry.RetryPolicy`
contract: per-task wall-clock timeouts, exponential backoff with
deterministic jitter, and an :class:`~repro.exec.retry.AttemptRecord`
history that travels with both failures (via
:class:`~repro.analysis.parallel.SweepError`) and successes (via
streamed events).

Backends do not know about caching, tracing, or task semantics — the
sweep layer (:func:`repro.analysis.parallel.execute_sweep`) owns those
and hands backends plain ``(index, task, seed)`` units plus a picklable
``execute`` callable.
"""

from __future__ import annotations

import abc
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.exec.retry import (
    DEFAULT_RETRY,
    AttemptRecord,
    RetryPolicy,
    WorkerLostError,
    call_with_timeout,
    format_error,
)

__all__ = [
    "BACKENDS",
    "ExecBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "TaskFailure",
    "TaskUnit",
    "resolve_backend",
]

#: The names :func:`resolve_backend` (and ``repro-experiment
#: --backend``) accepts.
BACKENDS = ("serial", "process", "mpi")

#: ``on_result(index, result, attempts)`` — called the moment a task
#: completes, with the failed-attempt history that preceded the success.
ResultCallback = Callable[[int, object, Tuple[AttemptRecord, ...]], None]


@dataclass(frozen=True)
class TaskUnit:
    """One schedulable task: its sweep index, payload, and jitter seed."""

    index: int
    task: object
    seed: str


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its attempts (or failed fast)."""

    index: int
    task: object
    error: BaseException
    attempts: Tuple[AttemptRecord, ...]


def _ignore_result(index, result, attempts) -> None:
    return None


def attempt_task(
    execute: Callable[[object], object],
    unit: TaskUnit,
    retry: RetryPolicy,
) -> Tuple[bool, object, Tuple[AttemptRecord, ...]]:
    """Run one task in this process under the retry policy.

    Returns ``(ok, result_or_error, attempts)`` where ``attempts`` holds
    one record per *failed* attempt.  ``KeyboardInterrupt`` /
    ``SystemExit`` always propagate.
    """
    attempts: List[AttemptRecord] = []
    while True:
        attempt_no = len(attempts) + 1
        try:
            result = call_with_timeout(execute, unit.task, retry.timeout_s)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 - classified by the policy
            err_repr, err_tb = format_error(exc)
            if retry.is_retryable(exc) and attempt_no < retry.max_attempts:
                backoff = retry.backoff_s(attempt_no, unit.seed)
                attempts.append(
                    AttemptRecord(attempt_no, err_repr, err_tb, backoff)
                )
                time.sleep(backoff)
                continue
            attempts.append(AttemptRecord(attempt_no, err_repr, err_tb))
            return False, exc, tuple(attempts)
        return True, result, tuple(attempts)


class ExecBackend(abc.ABC):
    """How a sweep's pending tasks get executed.

    Contract (shared by every implementation, asserted in
    ``tests/exec/``):

    * results are streamed — ``on_result(index, result, attempts)`` is
      invoked the moment each task completes, never batched at the end
      (the cache-insertion hook that makes sweeps resumable);
    * an exception raised by a task is *collected* into the returned
      :class:`TaskFailure` list, not propagated — except
      ``KeyboardInterrupt``/``SystemExit``, which always propagate;
    * an exception raised by ``on_result`` itself is collected as that
      task's failure (never retried: re-running a simulation because a
      callback is buggy would mask the bug);
    * results are bit-identical across backends — tasks are pure
      functions of their spec, and backends add no nondeterminism.
    """

    name: str = "?"

    @abc.abstractmethod
    def run(
        self,
        execute: Callable[[object], object],
        units: Sequence[TaskUnit],
        *,
        retry: RetryPolicy = DEFAULT_RETRY,
        on_result: ResultCallback = _ignore_result,
    ) -> List[TaskFailure]:
        """Execute every unit; return the failures (empty = clean sweep)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def deliver(
    unit: TaskUnit,
    result: object,
    attempts: Tuple[AttemptRecord, ...],
    on_result: ResultCallback,
    failures: List[TaskFailure],
) -> None:
    """Hand one completed result to the callback, collecting its errors."""
    try:
        on_result(unit.index, result, attempts)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # noqa: BLE001 - reported via SweepError
        err_repr, err_tb = format_error(exc)
        failures.append(
            TaskFailure(
                unit.index,
                unit.task,
                exc,
                attempts + (AttemptRecord(len(attempts) + 1, err_repr, err_tb),),
            )
        )


class SerialBackend(ExecBackend):
    """In-process execution, one task at a time, in input order.

    The reference implementation: no pickling, no processes, and the
    bit-identity oracle for the parallel backends.  Timeouts are
    enforced only when running on the main thread (``SIGALRM``).
    """

    name = "serial"

    def run(
        self,
        execute,
        units,
        *,
        retry: RetryPolicy = DEFAULT_RETRY,
        on_result: ResultCallback = _ignore_result,
    ) -> List[TaskFailure]:
        failures: List[TaskFailure] = []
        for unit in units:
            ok, payload, attempts = attempt_task(execute, unit, retry)
            if ok:
                deliver(unit, payload, attempts, on_result, failures)
            else:
                failures.append(
                    TaskFailure(unit.index, unit.task, payload, attempts)
                )
        return failures


def _pool_entry(execute, task, timeout_s):
    """Worker body: the task under its wall-clock budget (picklable)."""
    return call_with_timeout(execute, task, timeout_s)


@dataclass
class _TaskState:
    """Coordinator-side bookkeeping for one in-flight-or-queued task."""

    unit: TaskUnit
    attempts: List[AttemptRecord] = field(default_factory=list)
    ready_at: float = 0.0  #: monotonic time the next attempt may start


class ProcessPoolBackend(ExecBackend):
    """A ``ProcessPoolExecutor`` hardened against worker death.

    At most ``max_workers`` tasks are in flight at once (the rest queue
    in the coordinator, not the pool), so when a worker is killed and
    the executor breaks, the blast radius is exactly the in-flight
    window: each of those tasks is charged one
    :class:`~repro.exec.retry.WorkerLostError` attempt, the pool is
    respawned, and the survivors (plus the retryable casualties) run
    again.  Tasks that completed before the break keep their results.
    A task that *keeps* breaking the pool (it kills its own worker)
    exhausts its attempts and is reported as the sole casualty while its
    siblings complete — never the all-tasks ``BrokenProcessPool``
    cascade the bare executor produces.

    Parameters
    ----------
    max_workers:
        Worker processes (``None`` = one per core).
    max_respawns:
        Pool rebuilds tolerated before the backend gives up and fails
        the remaining tasks (a runaway-kill backstop).
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_respawns: int = 8,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be None or >= 1, got {max_workers}"
            )
        if max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {max_respawns}"
            )
        self.max_workers = max_workers
        self.max_respawns = max_respawns

    def _resolved_workers(self, n_tasks: int) -> int:
        import os

        workers = self.max_workers or os.cpu_count() or 1
        return max(1, min(workers, n_tasks))

    def run(
        self,
        execute,
        units,
        *,
        retry: RetryPolicy = DEFAULT_RETRY,
        on_result: ResultCallback = _ignore_result,
    ) -> List[TaskFailure]:
        failures: List[TaskFailure] = []
        queue = deque(_TaskState(unit) for unit in units)
        waiting: List[Tuple[float, int, _TaskState]] = []  # backoff heap
        inflight: dict = {}  # Future -> _TaskState
        tiebreak = 0
        pool: Optional[ProcessPoolExecutor] = None
        respawns = 0
        workers = self._resolved_workers(len(units))

        def requeue_or_fail(state: _TaskState, error: BaseException) -> None:
            nonlocal tiebreak
            attempt_no = len(state.attempts) + 1
            err_repr, err_tb = format_error(error)
            retryable = (
                retry.is_retryable(error) and attempt_no < retry.max_attempts
            )
            backoff = (
                retry.backoff_s(attempt_no, state.unit.seed)
                if retryable
                else 0.0
            )
            state.attempts.append(
                AttemptRecord(attempt_no, err_repr, err_tb, backoff)
            )
            if retryable:
                state.ready_at = time.monotonic() + backoff
                tiebreak += 1
                heappush(waiting, (state.ready_at, tiebreak, state))
            else:
                failures.append(
                    TaskFailure(
                        state.unit.index,
                        state.unit.task,
                        error,
                        tuple(state.attempts),
                    )
                )

        def handle_broken_pool() -> None:
            """Contain a worker death: drain, charge, respawn."""
            nonlocal pool, respawns
            for future, state in list(inflight.items()):
                del inflight[future]
                if future.done() and not future.cancelled():
                    try:
                        result = future.result(timeout=0)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BrokenExecutor:
                        requeue_or_fail(
                            state,
                            WorkerLostError(
                                "worker process died (killed or crashed) "
                                "while this task was in flight"
                            ),
                        )
                    except Exception as exc:  # noqa: BLE001
                        requeue_or_fail(state, exc)
                    else:
                        deliver(
                            state.unit,
                            result,
                            tuple(state.attempts),
                            on_result,
                            failures,
                        )
                else:
                    future.cancel()
                    requeue_or_fail(
                        state,
                        WorkerLostError(
                            "worker process died (killed or crashed) "
                            "while this task was in flight"
                        ),
                    )
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            respawns += 1
            if respawns > self.max_respawns:
                while waiting:
                    _, _, state = heappop(waiting)
                    _fail_respawn_limit(state, failures, self.max_respawns)
                while queue:
                    _fail_respawn_limit(
                        queue.popleft(), failures, self.max_respawns
                    )

        try:
            while queue or waiting or inflight:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, _, state = heappop(waiting)
                    queue.append(state)
                while queue and len(inflight) < workers:
                    if pool is None:
                        pool = ProcessPoolExecutor(max_workers=workers)
                    state = queue.popleft()
                    try:
                        future = pool.submit(
                            _pool_entry, execute, state.unit.task,
                            retry.timeout_s,
                        )
                    except BrokenExecutor:
                        queue.appendleft(state)
                        handle_broken_pool()
                        break
                    inflight[future] = state
                if not inflight:
                    if waiting:
                        pause = waiting[0][0] - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                    continue
                timeout = None
                if waiting:
                    timeout = max(0.0, waiting[0][0] - time.monotonic())
                done, _ = wait(
                    set(inflight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    state = inflight.pop(future)
                    try:
                        result = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BrokenExecutor:
                        broken = True
                        requeue_or_fail(
                            state,
                            WorkerLostError(
                                "worker process died (killed or crashed) "
                                "while this task was in flight"
                            ),
                        )
                    except Exception as exc:  # noqa: BLE001
                        requeue_or_fail(state, exc)
                    else:
                        deliver(
                            state.unit,
                            result,
                            tuple(state.attempts),
                            on_result,
                            failures,
                        )
                if broken:
                    handle_broken_pool()
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return failures


def _fail_respawn_limit(
    state: _TaskState, failures: List[TaskFailure], limit: int
) -> None:
    error = WorkerLostError(
        f"giving up: the worker pool broke more than {limit} times "
        "(max_respawns); remaining tasks were not attempted further"
    )
    err_repr, err_tb = format_error(error)
    state.attempts.append(
        AttemptRecord(len(state.attempts) + 1, err_repr, err_tb)
    )
    failures.append(
        TaskFailure(
            state.unit.index, state.unit.task, error, tuple(state.attempts)
        )
    )


def resolve_backend(
    backend: Union[str, ExecBackend, None] = None,
    n_workers: Optional[int] = 0,
    n_pending: Optional[int] = None,
) -> ExecBackend:
    """The one backend-selection convention.

    ``backend`` is an :class:`ExecBackend` instance (returned as-is), a
    name from :data:`BACKENDS`, or ``None`` to infer from ``n_workers``
    (the internal convention: ``0`` = serial in-process, ``None`` = one
    worker per core, ``N`` = N workers).  When inferring, a sweep with
    at most one pending task (``n_pending``) stays serial — spawning a
    pool for a single run is pure overhead.
    """
    if isinstance(backend, ExecBackend):
        return backend
    if backend is None:
        serial = n_workers == 0 or (n_pending is not None and n_pending <= 1)
        backend = "serial" if serial else "process"
    if backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessPoolBackend(
            max_workers=None if n_workers in (0, None) else n_workers
        )
    if backend == "mpi":
        from repro.exec.mpi import MpiBackend

        return MpiBackend()
    raise ValueError(
        f"unknown backend {backend!r}; valid backends: "
        f"{', '.join(BACKENDS)} (or an ExecBackend instance)"
    )
