"""repro.exec — fault-tolerant, pluggable sweep execution backends.

The execution substrate under every sweep family
(:func:`repro.analysis.parallel.run_sweep`,
:func:`repro.faults.sweep.run_chaos_sweep`,
:func:`repro.serving.sweep.run_serving_sweep`): a
:class:`~repro.exec.backends.ExecBackend` runs independent tasks and
streams results as they land, a
:class:`~repro.exec.retry.RetryPolicy` bounds attempts/backoff/
timeouts per task, and worker death is contained instead of cascading.
See ``docs/BACKENDS.md`` for the selection and tuning guide.
"""

from repro.exec.backends import (
    BACKENDS,
    ExecBackend,
    ProcessPoolBackend,
    SerialBackend,
    TaskFailure,
    TaskUnit,
    resolve_backend,
)
from repro.exec.mpi import MpiBackend, load_mpi, mpi_available
from repro.exec.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    AttemptRecord,
    RetryPolicy,
    SweepTimeoutError,
    WorkerLostError,
    call_with_timeout,
)

__all__ = [
    "AttemptRecord",
    "BACKENDS",
    "DEFAULT_RETRY",
    "ExecBackend",
    "MpiBackend",
    "NO_RETRY",
    "ProcessPoolBackend",
    "RetryPolicy",
    "SerialBackend",
    "SweepTimeoutError",
    "TaskFailure",
    "TaskUnit",
    "WorkerLostError",
    "call_with_timeout",
    "load_mpi",
    "mpi_available",
    "resolve_backend",
]
