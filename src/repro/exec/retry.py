"""Per-task fault tolerance: retry policies, attempt records, timeouts.

Sweep tasks are pure functions of their spec, so a *transient* failure —
a pool worker OOM-killed mid-run, a wall-clock timeout on an overloaded
box — is safe to retry: the re-run produces the identical result.  A
*deterministic* failure (the task itself raises) is not worth retrying:
the same inputs raise the same error.  :class:`RetryPolicy` encodes that
split: by default only :class:`WorkerLostError` and
:class:`SweepTimeoutError` are retried, everything else fails fast.

Backoff between attempts is exponential with deterministic jitter: the
jitter factor is seeded from the task's content key (or a stable repr
hash when no key exists), so two runs of the same failing sweep sleep
the same schedule — reproducibility extends to the failure path.
"""

from __future__ import annotations

import hashlib
import random
import signal
import threading
import traceback
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "AttemptRecord",
    "DEFAULT_RETRY",
    "NO_RETRY",
    "RetryPolicy",
    "SweepTimeoutError",
    "WorkerLostError",
    "call_with_timeout",
    "format_attempts",
    "task_seed",
]


class WorkerLostError(RuntimeError):
    """The worker process running a task died (SIGKILL, OOM, crash).

    Distinct from the task *raising*: the task never got to finish, so
    the failure is attributed to the execution substrate and is
    retryable by default.
    """


class SweepTimeoutError(RuntimeError):
    """A task attempt exceeded the policy's per-task wall-clock budget."""


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt at a task (successes are not recorded).

    ``backoff_s`` is the sleep *before the next attempt* — ``0.0`` when
    this was the final attempt.
    """

    attempt: int  #: 1-based attempt number
    error: str  #: ``repr`` of the exception
    traceback: str  #: formatted traceback text ("" when unavailable)
    backoff_s: float = 0.0

    def describe(self) -> str:
        suffix = f" (retrying in {self.backoff_s:.3f}s)" if self.backoff_s else ""
        return f"attempt {self.attempt}: {self.error}{suffix}"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt each task, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts per task (``1`` = no retry).
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff: attempt ``k``'s failure sleeps
        ``min(base * factor**(k-1), max)`` scaled by jitter.
    jitter:
        Fractional jitter amplitude in ``[0, 1]``: the sleep is scaled
        by a factor drawn deterministically from the task seed in
        ``[1 - jitter, 1 + jitter]``.
    timeout_s:
        Per-attempt wall-clock budget, enforced with ``SIGALRM`` in the
        executing process (see :func:`call_with_timeout`); ``None``
        disables it.
    retry_all_errors:
        ``True`` retries every :class:`Exception`; the default retries
        only :class:`WorkerLostError` / :class:`SweepTimeoutError`
        (deterministic task failures would just fail again).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    timeout_s: Optional[float] = None
    retry_all_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        check_nonnegative("backoff_base_s", self.backoff_base_s)
        check_positive("backoff_factor", self.backoff_factor)
        check_nonnegative("backoff_max_s", self.backoff_max_s)
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout_s is not None:
            check_positive("timeout_s", self.timeout_s)

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt (policy-wise)."""
        if isinstance(error, (KeyboardInterrupt, SystemExit)):
            return False
        if self.retry_all_errors:
            return isinstance(error, Exception)
        return isinstance(error, (WorkerLostError, SweepTimeoutError))

    def backoff_s(self, attempt: int, seed: str) -> float:
        """Sleep after failed ``attempt`` (1-based), jitter from ``seed``.

        Deterministic: the same (policy, attempt, seed) always produces
        the same sleep, so failing sweeps replay identically.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = random.Random(f"{seed}#{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: The sweep default: 3 attempts for substrate failures, fail-fast for
#: deterministic task errors, no per-task timeout.
DEFAULT_RETRY = RetryPolicy()

#: Exactly one attempt per task — the pre-backend behaviour.
NO_RETRY = RetryPolicy(max_attempts=1)


def task_seed(index: int, task: object, key: Optional[str] = None) -> str:
    """The deterministic jitter seed for one task.

    Prefers the task's content-hash ``key`` (what the run cache uses);
    falls back to a hash of the task's index and ``repr`` — stable for
    the frozen-dataclass task types the sweeps use.
    """
    if key:
        return key
    text = f"{index}:{task!r}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def format_attempts(attempts: Tuple[AttemptRecord, ...]) -> str:
    """Render an attempt history as one indented block (for messages)."""
    return "\n".join(f"  {record.describe()}" for record in attempts)


def format_error(error: BaseException) -> Tuple[str, str]:
    """(repr, formatted traceback) of one failure, traceback-chain aware."""
    text = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    return repr(error), text


def call_with_timeout(
    fn: Callable[[object], object], task: object, timeout_s: Optional[float]
) -> object:
    """Run ``fn(task)``, raising :class:`SweepTimeoutError` past the budget.

    Enforced with ``signal.setitimer``/``SIGALRM``, which requires the
    main thread of the executing process — exactly where pool workers
    and serial sweeps run tasks.  Anywhere the alarm cannot be armed
    (no ``SIGALRM`` on the platform, or a non-main thread) the call runs
    unguarded: a best-effort contract, documented in
    ``docs/BACKENDS.md``.
    """
    if timeout_s is None:
        return fn(task)
    if not hasattr(signal, "SIGALRM") or (
        threading.current_thread() is not threading.main_thread()
    ):
        return fn(task)

    def _expired(signum, frame):
        raise SweepTimeoutError(
            f"task exceeded its {timeout_s}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn(task)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
