"""MPI sweep backend with a graceful single-rank emulator fallback.

Clusters in the paper's setting (and Medhat et al.'s) launch work with
``mpirun``; this backend lets a sweep fan out across mpi4py ranks with
round-robin task ownership.  When mpi4py is not installed — laptops, CI
— the same code path runs against a tiny single-rank emulator exposing
the handful of ``COMM_WORLD`` methods the backend uses, so
``MpiBackend()`` is always constructible and a one-rank "cluster" is
just the serial backend wearing an MPI hat.  (The emulator idiom
follows cctbx's ``libtbx.mpi4py`` shim.)

Under a real multi-rank communicator every rank computes its own share,
the shares are ``allgather``-ed, and *every* rank then streams the full
result set through ``on_result`` in sweep order — so all ranks return
identical sweep output and cache writes stay correct (the run cache is
last-writer-wins, so the duplicate puts from N ranks are harmless).
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.exec.backends import (
    ExecBackend,
    SerialBackend,
    TaskFailure,
    _ignore_result,
    attempt_task,
    deliver,
)
from repro.exec.retry import DEFAULT_RETRY, AttemptRecord, RetryPolicy

__all__ = ["MpiBackend", "load_mpi", "mpi_available"]


class _EmulatedComm:
    """``COMM_WORLD`` for a world of one: every collective is identity."""

    def Get_rank(self) -> int:
        return 0

    def Get_size(self) -> int:
        return 1

    def barrier(self) -> None:
        return None

    Barrier = barrier

    def bcast(self, obj, root: int = 0):
        return obj

    def gather(self, obj, root: int = 0):
        return [obj]

    def allgather(self, obj):
        return [obj]


class _EmulatedMPI:
    """The module-level surface :func:`load_mpi` falls back to."""

    COMM_WORLD = _EmulatedComm()

    @staticmethod
    def Wtime() -> float:
        return time.time()

    @staticmethod
    def Finalize() -> None:
        return None


def load_mpi() -> Tuple[object, bool]:
    """``(MPI, emulated)`` — mpi4py's ``MPI`` module when importable,
    else the single-rank emulator (``emulated=True``)."""
    try:
        from mpi4py import MPI  # type: ignore[import-not-found]
    except ImportError:
        return _EmulatedMPI(), True
    return MPI, False


def mpi_available() -> bool:
    """Whether the real mpi4py is importable."""
    return not load_mpi()[1]


class MpiBackend(ExecBackend):
    """Round-robin task fan-out over mpi4py ranks.

    Parameters
    ----------
    comm:
        An mpi4py-style communicator; defaults to ``COMM_WORLD`` of
        whatever :func:`load_mpi` found.  :attr:`emulated` reports
        whether the fallback emulator is in use.

    With one rank (the emulator, or ``mpirun -n 1``) this is exactly
    :class:`~repro.exec.backends.SerialBackend` — results stream live
    and bit-identically.  With several ranks, rank ``r`` executes tasks
    ``r, r+size, r+2*size, ...`` locally (retry policy applied on the
    owning rank), then an ``allgather`` merges shares and every rank
    streams the merged results in sweep order.
    """

    name = "mpi"

    def __init__(self, comm=None) -> None:
        if comm is None:
            mpi, emulated = load_mpi()
            comm = mpi.COMM_WORLD
            self.emulated = emulated
        else:
            self.emulated = False
        self.comm = comm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "emulated" if self.emulated else "mpi4py"
        return f"MpiBackend({mode}, size={self.comm.Get_size()})"

    def run(
        self,
        execute,
        units,
        *,
        retry: RetryPolicy = DEFAULT_RETRY,
        on_result=_ignore_result,
    ) -> List[TaskFailure]:
        size = self.comm.Get_size()
        if size <= 1:
            return SerialBackend().run(
                execute, units, retry=retry, on_result=on_result
            )
        rank = self.comm.Get_rank()
        # (position, ok, payload, attempts) for this rank's share.
        local: List[Tuple[int, bool, object, Tuple[AttemptRecord, ...]]] = []
        for position, unit in enumerate(units):
            if position % size != rank:
                continue
            ok, payload, attempts = attempt_task(execute, unit, retry)
            local.append((position, ok, payload, attempts))
        merged = sorted(
            entry for share in self.comm.allgather(local) for entry in share
        )
        failures: List[TaskFailure] = []
        for position, ok, payload, attempts in merged:
            unit = units[position]
            if ok:
                deliver(unit, payload, attempts, on_result, failures)
            else:
                failures.append(
                    TaskFailure(unit.index, unit.task, payload, attempts)
                )
        return failures
